"""Incremental pairwise-diversity cache for the serving layer.

Every HTA solve needs the pairwise task-diversity submatrix of its candidate
set.  The in-process simulator recomputes it from the keyword matrix on each
iteration — ``O(k^2 R)`` integer dot products.  The serving daemon instead
pays the full ``O(n^2 R)`` cost once at startup and then only *carves*
``O(k^2)`` submatrices per solve, exploiting the paper's pool monotonicity:
once displayed, a task is dropped from subsequent iterations, so rows and
columns only ever leave the matrix, they never change.

The cache subscribes to :class:`repro.crowd.service.TaskPoolState` removal
events and compacts its backing matrix once enough rows have died (keeping
carves dense without paying a copy per removal).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.distance import pairwise_jaccard, take_submatrix
from ..core.task import TaskPool

#: Compact the backing matrix when fewer than this fraction of rows is alive.
_COMPACT_THRESHOLD = 0.5


class IncrementalDiversityCache:
    """Pairwise Jaccard distances over a shrink-only task pool.

    Args:
        pool: The full task pool at daemon startup; the ``O(n^2 R)``
            pairwise matrix is computed here, once.
        compact_threshold: Live-row fraction below which the backing matrix
            is compacted to the surviving rows.
    """

    def __init__(self, pool: TaskPool, compact_threshold: float = _COMPACT_THRESHOLD):
        if not 0.0 <= compact_threshold <= 1.0:
            raise ValueError(
                f"compact_threshold must be in [0, 1], got {compact_threshold}"
            )
        self._matrix = pairwise_jaccard(pool.matrix)
        self._row_of: dict[str, int] = {
            task.task_id: i for i, task in enumerate(pool)
        }
        self._capacity = len(self._row_of)
        self._compact_threshold = compact_threshold
        self.compactions = 0
        self.carves = 0

    def __len__(self) -> int:
        """Number of live tasks."""
        return len(self._row_of)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._row_of

    @property
    def backing_rows(self) -> int:
        """Rows in the backing matrix (>= live tasks until compaction)."""
        return self._capacity

    def on_removed(self, task_ids: Sequence[str]) -> None:
        """Pool-removal listener: forget rows, compacting when sparse.

        Unknown ids are ignored, so the cache can be attached to a pool
        state that already dropped some tasks.
        """
        for task_id in task_ids:
            self._row_of.pop(task_id, None)
        live = len(self._row_of)
        if self._capacity and live / self._capacity < self._compact_threshold:
            self._compact()

    def _compact(self) -> None:
        ids = list(self._row_of)
        rows = np.fromiter(
            (self._row_of[tid] for tid in ids), dtype=np.intp, count=len(ids)
        )
        self._matrix = take_submatrix(self._matrix, rows)
        self._row_of = {tid: i for i, tid in enumerate(ids)}
        self._capacity = len(ids)
        self.compactions += 1

    def submatrix(self, task_ids: Sequence[str]) -> np.ndarray | None:
        """Pairwise-diversity block for ``task_ids``, in the given order.

        Returns ``None`` when any id is unknown (the solve then falls back
        to recomputing from keyword vectors) — this keeps the cache safe to
        use as a :data:`repro.crowd.service.DiversityProvider` even if it
        drifts from the pool it mirrors.
        """
        try:
            rows = np.fromiter(
                (self._row_of[tid] for tid in task_ids),
                dtype=np.intp,
                count=len(task_ids),
            )
        except KeyError:
            return None
        self.carves += 1
        return take_submatrix(self._matrix, rows)

    def attach(self, service) -> "IncrementalDiversityCache":
        """Wire this cache into an :class:`AssignmentService` (both hooks)."""
        service.pool_state.add_removal_listener(self.on_removed)
        service.set_diversity_provider(self.submatrix)
        return self

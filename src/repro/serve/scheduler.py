"""Micro-batched background solve scheduling.

The paper runs HTA "in the background while workers complete tasks": one
assignment iteration serves every worker currently due (``W^i``), not one
solve per worker.  :class:`SolveScheduler` reproduces that shape behind the
HTTP boundary — completion requests *mark workers due* and await a future;
a background loop coalesces everything that became due within a configurable
batch window into a single :meth:`AssignmentService.reassign_workers` call,
then resolves each waiter with its worker's freshly installed display event.

With a synchronous ``solve_batch`` the solver briefly occupies the event
loop; micro-batching is precisely what keeps that affordable (one solver
invocation per tick instead of one per request).  With a *coroutine*
``solve_batch`` — the :class:`repro.serve.engine.SolveEngine` path — batches
are dispatched as concurrent tasks (bounded by ``max_concurrency``) and the
solve compute leaves the loop entirely.

Tracing: :meth:`submit` accepts the request's trace and opens its ``queue``
span; when the batch lands, the stage spans collected in the batch's
:class:`~repro.serve.tracing.SolveContext` are adopted into every member
trace.  All scheduler metrics — sync and async paths alike — flow through
one :class:`~repro.serve.tracing.SpanMetrics` seam fed with the batch span,
so the ``serve_solve*`` family cannot drift from what the traces record.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from collections.abc import Callable, Sequence

from ..crowd.events import TasksAssigned
from .metrics import MetricsRegistry
from .tracing import NULL_TRACE, SolveContext, Span, SpanMetrics, Trace

#: Batch-size histogram buckets (1..256 workers per solve).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: A batch-solve callable: ``(worker_ids)`` or ``(worker_ids, ctx)`` where
#: ``ctx`` is the batch's :class:`SolveContext` (stage-span sink).
BatchSolveFn = Callable[..., dict[str, TasksAssigned]]

#: One parked request: its future, its trace, and its open queue span.
_Waiter = tuple


def _accepts_context(solve_batch: BatchSolveFn) -> bool:
    """Whether ``solve_batch`` takes a second (SolveContext) parameter."""
    try:
        parameters = inspect.signature(solve_batch).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p for p in parameters
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 2 or any(
        p.kind == p.VAR_POSITIONAL for p in parameters
    )


class SolveScheduler:
    """Coalesces due-for-reassignment workers into batched HTA solves.

    Args:
        solve_batch: Called with the deduplicated worker ids of one batch
            (plus the batch's :class:`SolveContext` when its signature has a
            second parameter); returns the installed display events keyed by
            worker (a worker may be absent when the pool had nothing left
            for it).
        registry: Metrics sink; the scheduler owns ``serve_solves_total``,
            ``serve_solve_seconds``, ``serve_solve_batch_size`` and
            ``serve_solve_errors_total``, all updated through one
            :class:`SpanMetrics` route.
        max_batch_delay: Seconds the loop waits after the first due worker
            for stragglers to join the batch (the latency/batching knob).
            Overflow left behind by a size-capped batch skips this wait and
            drains on the very next tick.
        max_batch_size: Hard cap on workers per solve; overflow is dispatched
            immediately on the next tick.
        solve_observer: Optional callback receiving each solve's wall time
            in seconds (successes only) — the degradation controller's
            overload signal.
        max_concurrency: Batches allowed in flight at once when
            ``solve_batch`` is a coroutine function (the off-loop engine
            path).  Ignored for synchronous ``solve_batch``, which always
            executes one batch at a time on the loop.
    """

    def __init__(
        self,
        solve_batch: BatchSolveFn,
        registry: MetricsRegistry,
        max_batch_delay: float = 0.05,
        max_batch_size: int = 64,
        solve_observer: "Callable[[float], None] | None" = None,
        max_concurrency: int = 1,
    ):
        if max_batch_delay < 0:
            raise ValueError(f"max_batch_delay must be >= 0, got {max_batch_delay}")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        self._solve_batch = solve_batch
        self._is_async = inspect.iscoroutinefunction(solve_batch)
        self._accepts_ctx = _accepts_context(solve_batch)
        self._max_batch_delay = max_batch_delay
        self._max_batch_size = max_batch_size
        self._solve_observer = solve_observer
        self._max_concurrency = max_concurrency
        self._concurrency = asyncio.Semaphore(max_concurrency)
        self._inflight: set[asyncio.Task] = set()
        self._due: dict[str, None] = {}  # insertion-ordered set
        self._waiters: dict[str, list[_Waiter]] = {}
        self._wakeup: asyncio.Event = asyncio.Event()
        self._idle: asyncio.Event = asyncio.Event()
        self._idle.set()
        self._runner: asyncio.Task | None = None
        self._drain_overflow = False
        self._closed = False
        self._span_metrics = SpanMetrics().route(
            "solve_batch",
            seconds=registry.histogram(
                "serve_solve_seconds", "Latency of one batched HTA solve in seconds"
            ),
            count=registry.counter(
                "serve_solves_total", "Background HTA solve batches executed"
            ),
            errors=registry.counter(
                "serve_solve_errors_total", "Solve batches that raised"
            ),
            attr_histograms={
                "batch_size": registry.histogram(
                    "serve_solve_batch_size",
                    "Workers reassigned per solve batch",
                    buckets=_BATCH_BUCKETS,
                )
            },
        )

    @property
    def pending(self) -> int:
        """Workers currently queued for the next batch."""
        return len(self._due)

    def start(self) -> None:
        """Spawn the background batching loop on the running event loop."""
        if self._runner is not None:
            raise RuntimeError("scheduler already started")
        self._closed = False
        self._runner = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the loop, await in-flight solves, fail still-waiting futures."""
        self._closed = True
        self._wakeup.set()
        if self._runner is not None:
            await self._runner
            self._runner = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        for waiters in self._waiters.values():
            for future, _, _ in waiters:
                if not future.done():
                    future.set_exception(RuntimeError("scheduler stopped"))
        self._waiters.clear()
        self._due.clear()
        self._idle.set()

    async def quiesce(self) -> None:
        """Block until no batch is queued or in flight (drain support).

        Event-driven, not polled: queued work wakes the batching loop as
        usual, and every landed batch (success or failure) signals the idle
        event through :meth:`_finish_batch`, so this coroutine sleeps
        between state changes instead of spinning.  New :meth:`submit`
        calls made while quiescing extend the wait — the drain protocol
        stops feeding the scheduler *before* quiescing.
        """
        while True:
            active = [t for t in self._inflight if not t.done()]
            if not self._due and not self._waiters and not active:
                return
            if active:
                await asyncio.wait(active, return_when=asyncio.ALL_COMPLETED)
            else:
                self._idle.clear()
                await self._idle.wait()

    def submit(
        self, worker_id: str, trace: "Trace | None" = None
    ) -> "asyncio.Future[TasksAssigned | None]":
        """Mark ``worker_id`` due; the future resolves with its new display.

        Resolves with ``None`` when the solve ran but the pool had nothing
        left for this worker (its current display stands).  ``trace``, when
        given, gets a ``queue`` span (submit until batch dispatch) and the
        batch's stage spans adopted on completion.
        """
        if self._closed:
            raise RuntimeError("scheduler is stopped")
        trace = trace if trace is not None else NULL_TRACE
        queue_span = trace.begin("queue", queue_depth=len(self._due))
        future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(worker_id, []).append(
            (future, trace, queue_span)
        )
        self._due[worker_id] = None
        self._wakeup.set()
        return future

    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            if self._closed:
                return
            if self._drain_overflow:
                # A size-capped batch left due workers behind; they already
                # waited one batch window, so dispatch them this tick rather
                # than holding them open for stragglers again.
                self._drain_overflow = False
            else:
                await self._collect_stragglers()
            if self._is_async:
                await self._await_capacity()
            if self._closed:
                return
            batch = list(self._due)[: self._max_batch_size]
            for worker_id in batch:
                del self._due[worker_id]
            self._drain_overflow = bool(self._due)
            if not self._due:
                self._wakeup.clear()
            if not batch:
                continue
            # Capture this batch's waiters now: a worker resubmitted while
            # its solve is in flight must resolve with the *next* batch.
            waiters = {w: self._waiters.pop(w, []) for w in batch}
            for entries in waiters.values():
                for _, _, queue_span in entries:
                    queue_span.end(batch_size=len(batch))
            if self._is_async:
                await self._dispatch_async(batch, waiters)
            else:
                self._execute(batch, waiters)

    async def _collect_stragglers(self) -> None:
        """Hold the batch open for ``max_batch_delay`` to coalesce arrivals."""
        if self._max_batch_delay <= 0:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self._max_batch_delay
        while len(self._due) < self._max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0 or self._closed:
                return
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except asyncio.TimeoutError:
                self._wakeup.set()  # restore: the due set is non-empty
                return

    async def _await_capacity(self) -> None:
        """Back-pressure batching: while every concurrency slot is busy,
        keep the forming batch open instead of cutting it.

        Under saturation the due set keeps absorbing arrivals, so batches
        self-size to the solve capacity — per-batch solve cost is dominated
        by the candidate set, not the batch size, so shipping many tiny
        batches under load multiplies total solve compute for nothing.  The
        wait ends the moment a slot frees (latency is never traded when
        capacity is available) or when the batch hits ``max_batch_size``
        (the size-capped batch is cut and queues on the engine's slot
        semaphore, recorded as its ``dispatch_wait`` span).
        """
        while not self._closed and len(self._due) < self._max_batch_size:
            active = [t for t in self._inflight if not t.done()]
            if len(active) < self._max_concurrency:
                return
            await asyncio.wait(
                active, return_when=asyncio.FIRST_COMPLETED, timeout=0.1
            )

    async def _dispatch_async(
        self, batch: list[str], waiters: dict[str, list[_Waiter]]
    ) -> None:
        """Launch one batch immediately as a task.

        The concurrency slot is acquired *inside* the task
        (:meth:`_execute_async`), never here — acquiring first would park
        the batching loop behind the in-flight pool round-trip, so a worker
        due right after a dispatch could not even start its batch window
        until the previous solve came back (measured as a ~3x assign-p95
        regression over the in-loop path at one in-flight batch).
        """
        task = asyncio.get_running_loop().create_task(
            self._execute_async(batch, waiters)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _call_solve(self, batch: list[str], ctx: SolveContext):
        if self._accepts_ctx:
            return self._solve_batch(batch, ctx)
        return self._solve_batch(batch)

    @staticmethod
    def _seed_context(
        ctx: SolveContext, waiters: dict[str, list[_Waiter]]
    ) -> None:
        """Carry the member requests' trace ids into the batch context.

        The solve path (engine requests, replay journals) correlates its
        records back to the requests that rode the batch through these.
        """
        trace_ids = [
            trace.trace_id
            for entries in waiters.values()
            for _, trace, _ in entries
            if trace
        ]
        if trace_ids:
            ctx.attrs["trace_id"] = trace_ids[0]
            ctx.attrs["trace_ids"] = trace_ids

    async def _execute_async(
        self, batch: list[str], waiters: dict[str, list[_Waiter]]
    ) -> None:
        ctx = SolveContext()
        self._seed_context(ctx, waiters)
        wait_started = time.perf_counter()
        await self._concurrency.acquire()
        waited = time.perf_counter() - wait_started
        if self._closed:
            self._concurrency.release()
            self._fail_waiters(waiters, RuntimeError("scheduler stopped"))
            self._idle.set()
            return
        ctx.add_span("dispatch_wait", waited, abs_start=wait_started)
        started = time.perf_counter()
        try:
            events = await self._call_solve(batch, ctx)
        except Exception as exc:  # resolve waiters; the daemon stays up
            self._finish_batch(batch, waiters, ctx, started, error=exc)
            return
        finally:
            self._concurrency.release()
        self._finish_batch(batch, waiters, ctx, started, events=events)

    def _execute(
        self, batch: list[str], waiters: dict[str, list[_Waiter]]
    ) -> None:
        ctx = SolveContext()
        self._seed_context(ctx, waiters)
        started = time.perf_counter()
        try:
            events = self._call_solve(batch, ctx)
        except Exception as exc:  # resolve waiters; the daemon stays up
            self._finish_batch(batch, waiters, ctx, started, error=exc)
            return
        self._finish_batch(batch, waiters, ctx, started, events=events)

    def _finish_batch(
        self,
        batch: list[str],
        waiters: dict[str, list[_Waiter]],
        ctx: SolveContext,
        started: float,
        events: dict[str, TasksAssigned] | None = None,
        error: Exception | None = None,
    ) -> None:
        """One exit point for both solve paths: metrics through the span
        seam, stage spans into member traces, futures resolved or failed."""
        elapsed = time.perf_counter() - started
        batch_span = Span(
            "solve_batch",
            start=started,
            duration=elapsed,
            attrs={"batch_size": len(batch), **ctx.attrs},
            status="ok" if error is None else "error",
            error=None if error is None else f"{type(error).__name__}: {error}",
        )
        self._span_metrics.observe(batch_span)
        if error is None and self._solve_observer is not None:
            self._solve_observer(elapsed)
        for worker_id, entries in waiters.items():
            for future, trace, _ in entries:
                for span in ctx.spans:
                    trace.adopt(span)
                if error is not None:
                    trace.adopt(
                        Span(
                            "solve_error",
                            start=started,
                            duration=elapsed,
                            status="error",
                            error=batch_span.error,
                        )
                    )
                    if not future.done():
                        future.set_exception(error)
                elif not future.done():
                    future.set_result(events.get(worker_id))
        self._idle.set()

    @staticmethod
    def _fail_waiters(
        waiters: dict[str, list[_Waiter]], error: Exception
    ) -> None:
        for entries in waiters.values():
            for future, _, _ in entries:
                if not future.done():
                    future.set_exception(error)

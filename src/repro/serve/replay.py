"""Deterministic record/replay for the assignment daemon.

The paper's iterated assignment loop is a pure function of the observation
stream: the same registrations and completions, in the same order, produce
the same ``W^i`` batches, the same Eq. 7/8 instances, and the same displays.
The serving stack obscures that determinism behind an asyncio scheduler, a
process-pool engine, a degradation ladder and fault injection — this module
makes it checkable again:

* :class:`FlightRecorder` — an append-only JSONL *journal* written at the
  daemon's ingress and solve boundaries.  Ingress events (``register`` /
  ``complete`` / ``unregister`` / ``task_arrival``) capture what the outside
  world did, in event-loop order, with the request's trace id; solve events
  (``lease`` / ``commit`` / ``abandon``) capture how the daemon's
  lease/commit protocol interleaved — which is exactly the information
  concurrency erases.  The header pins the config fingerprint (strategy,
  seed, service knobs) and a SHA-256 of the *startup* task corpus, so a
  journal can refuse to replay against the wrong world; tasks posted after
  startup enter through ``task_arrival`` events carrying their full specs,
  which is what lets an open-world run replay from the startup pool alone.

* :func:`replay_journal` — re-drives a fresh
  :class:`~repro.crowd.service.AssignmentService` from a journal and asserts
  bit-identical outcomes: every lease must draw the same solver seed and
  candidate set, every commit must install byte-for-byte identical display
  events (task ids, pads, alpha/beta — floats survive JSON exactly via
  ``repr`` round-tripping), and the final service state must hash to the
  recorded ``end`` digest, RNG position included.  The first mismatch is
  reported as a :class:`Divergence` carrying the journal seq, the offending
  lease and worker, and the trace ids of the requests that rode that solve.

* :func:`replay_differential` — replays one journal under multiple
  configurations (:class:`ReplayVariant`): the in-loop solver path, the
  engine's worker-process path (same pickle round-trip, run in-process),
  the zero-copy shared-memory shipping path (index arrays against a real
  segment), the dense vs bit-packed Jaccard kernels, the reference and
  warm-started vs vectorized LSAP kernels, and optionally a pinned
  degradation-ladder tier.  Because live
  serving funnels every solve through the same
  :func:`~repro.crowd.service.execute_prepared` computation, all unpinned
  variants must agree bit-for-bit; a pinned tier is a diagnostic that shows
  *where* outcomes start depending on the ladder position.

See docs/SERVING.md ("Record/replay") for the journal schema and CLI.
"""

from __future__ import annotations

import contextlib
import copy
import hashlib
import json
import pickle
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.bandit import build_adaptivity
from ..core.task import Task, TaskPool
from ..core.worker import Worker
from ..crowd.events import TasksAssigned
from ..crowd.service import (
    AssignmentService,
    PreparedSolve,
    ServiceConfig,
    execute_prepared,
)
from ..core.solvers import get_solver
from ..errors import ReproError
from ..perf.config import use_kernel

#: Bump on any change to the journal line format; replay refuses mismatches.
JOURNAL_VERSION = 1

#: Required fields per event type (beyond ``type`` and ``seq``); an event
#: with a missing field or an unknown type is schema drift and fails load.
_EVENT_FIELDS: dict[str, frozenset[str]] = {
    "restore": frozenset({"state"}),
    "register": frozenset({"worker_id", "interest", "solver", "event"}),
    "complete": frozenset({"worker_id", "task_id"}),
    "unregister": frozenset({"worker_id"}),
    # Open-world ingestion: a ``POST /tasks`` batch admitted into the live
    # pool.  Each entry carries the full task spec (id, keyword indices,
    # metadata), so replay can rebuild tasks that never existed in the
    # startup corpus the header's ``pool_sha`` pins.
    "task_arrival": frozenset({"tasks"}),
    # Quality-layer events (present only when the daemon ran with a quality
    # config; see repro.quality).  ``probe`` records the aliases minted for
    # one installed display; ``tick`` marks a reputation flush.  Both are
    # recorded synchronously next to the controller call, so the journal
    # order IS the call order even under overlapping engine solves.
    "probe": frozenset({"worker_id", "iteration", "aliases"}),
    "tick": frozenset(),
    # Shard drain/rebalance: ``handoff_out`` records a worker leaving this
    # shard (the state blob is the exported session — replay re-derives the
    # export and demands bit-equality before unregistering); ``handoff_in``
    # records an adoption, carrying the full task specs of the worker's
    # display because those tasks belong to the *source* shard's corpus.
    "handoff_out": frozenset({"worker_id", "state"}),
    "handoff_in": frozenset({"worker_id", "state"}),
    "lease": frozenset(
        {"lease_id", "worker_ids", "solver", "seed", "n_candidates",
         "candidates_sha"}
    ),
    "commit": frozenset({"lease_id", "wall_time", "events"}),
    "abandon": frozenset({"lease_id"}),
    "snapshot": frozenset({"snapshot_id"}),
    "end": frozenset({"state_sha"}),
}


class ReplayError(ReproError):
    """A journal could not be recorded, loaded, or replayed."""


# -- fingerprints -----------------------------------------------------------


def pool_fingerprint(pool: TaskPool) -> str:
    """SHA-256 over the corpus: vocabulary, task ids, keyword vectors."""
    digest = hashlib.sha256()
    for keyword in pool.vocabulary.keywords:
        digest.update(keyword.encode())
        digest.update(b"\x00")
    digest.update(b"\x01")
    for task in pool:
        digest.update(task.task_id.encode())
        digest.update(b"\x00")
        digest.update(np.packbits(np.asarray(task.vector, dtype=bool)).tobytes())
    return digest.hexdigest()


def candidates_fingerprint(task_ids: Iterable[str]) -> str:
    """SHA-256 over an ordered candidate id sequence (lease identity)."""
    digest = hashlib.sha256()
    for task_id in task_ids:
        digest.update(task_id.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def state_fingerprint(state: dict) -> str:
    """SHA-256 of a JSON-serializable state payload (key-order independent)."""
    return hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()


def event_payload(event: TasksAssigned) -> dict:
    """The JSON form of one display event; the unit of bit-identity.

    Floats round-trip JSON exactly (``json.dumps`` emits ``repr``), so two
    payloads compare equal iff the events were bit-identical — alpha/beta
    estimates included.
    """
    return {
        "wall_time": event.wall_time,
        "session_time": event.session_time,
        "worker_id": event.worker_id,
        "iteration": event.iteration,
        "task_ids": list(event.task_ids),
        "random_pad_ids": list(event.random_pad_ids),
        "alpha": event.alpha,
        "beta": event.beta,
    }


# -- recording --------------------------------------------------------------


class FlightRecorder:
    """Writes the journal: one JSON object per line, flushed per event.

    One recorder documents one daemon process: the file is truncated on
    open (a restored daemon re-records its starting state as a ``restore``
    event, so the fresh journal is self-contained) and every event carries
    a contiguous ``seq`` starting at 1.
    """

    def __init__(self, path: "str | Path", header: dict):
        self._path = Path(path)
        self._fh = self._path.open("w", encoding="utf-8")
        self._seq = 0
        self._closed = False
        self._emit({"type": "header", "version": JOURNAL_VERSION, **header})

    @property
    def path(self) -> Path:
        return self._path

    @property
    def seq(self) -> int:
        """Seq of the most recently recorded event (0 = header only)."""
        return self._seq

    def _emit(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()

    def _record(self, event_type: str, **fields) -> None:
        if self._closed:
            return
        self._seq += 1
        self._emit({"type": event_type, "seq": self._seq, **fields})

    def record_restore(self, state: dict, snapshot_id: "int | None") -> None:
        self._record("restore", state=state, snapshot_id=snapshot_id)

    def record_register(
        self,
        worker_id: str,
        vector: np.ndarray,
        solver: str,
        event: TasksAssigned,
        trace_id: "str | None",
    ) -> None:
        self._record(
            "register",
            worker_id=worker_id,
            interest=np.flatnonzero(np.asarray(vector, dtype=bool)).tolist(),
            solver=solver,
            event=event_payload(event),
            trace_id=trace_id,
        )

    def record_complete(
        self,
        worker_id: str,
        task_id: str,
        trace_id: "str | None",
        completion_key: "str | None",
        answer: "int | None" = None,
    ) -> None:
        self._record(
            "complete",
            worker_id=worker_id,
            task_id=task_id,
            trace_id=trace_id,
            completion_key=completion_key,
            answer=answer,
        )

    def record_probe(
        self, worker_id: str, iteration: int, aliases: Sequence[str]
    ) -> None:
        self._record(
            "probe",
            worker_id=worker_id,
            iteration=iteration,
            aliases=list(aliases),
        )

    def record_tick(self) -> None:
        self._record("tick")

    def record_unregister(self, worker_id: str) -> None:
        self._record("unregister", worker_id=worker_id)

    def record_task_arrival(self, tasks, trace_id: "str | None") -> None:
        """One admitted ``POST /tasks`` batch (a sequence of ``Task``s)."""
        self._record(
            "task_arrival",
            tasks=[
                {
                    "task_id": task.task_id,
                    "interest": np.flatnonzero(
                        np.asarray(task.vector, dtype=bool)
                    ).tolist(),
                    "group": task.group,
                    "title": task.title,
                    "reward": task.reward,
                    "n_questions": task.n_questions,
                }
                for task in tasks
            ],
            trace_id=trace_id,
        )

    def record_handoff_out(self, worker_id: str, state: dict) -> None:
        """A worker drained off this shard (state = the handoff blob)."""
        self._record("handoff_out", worker_id=worker_id, state=state)

    def record_handoff_in(self, worker_id: str, state: dict) -> None:
        """A worker adopted onto this shard (state = the handoff blob)."""
        self._record("handoff_in", worker_id=worker_id, state=state)

    def record_lease(
        self, prepared: PreparedSolve, trace_ids: "Sequence[str] | None"
    ) -> None:
        self._record(
            "lease",
            lease_id=prepared.lease_id,
            worker_ids=list(prepared.worker_ids),
            solver=prepared.solver_name,
            seed=prepared.seed,
            n_candidates=len(prepared.candidates),
            candidates_sha=candidates_fingerprint(
                t.task_id for t in prepared.candidates
            ),
            trace_ids=list(trace_ids) if trace_ids else None,
        )

    def record_commit(
        self,
        prepared: PreparedSolve,
        wall_time: float,
        events: dict[str, TasksAssigned],
    ) -> None:
        self._record(
            "commit",
            lease_id=prepared.lease_id,
            wall_time=wall_time,
            events={w: event_payload(e) for w, e in events.items()},
        )

    def record_abandon(self, prepared: PreparedSolve) -> None:
        self._record("abandon", lease_id=prepared.lease_id)

    def record_snapshot(self, snapshot_id: int) -> None:
        self._record("snapshot", snapshot_id=snapshot_id)

    def record_end(self, state_sha: str) -> None:
        self._record("end", state_sha=state_sha)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()


# -- loading ----------------------------------------------------------------


@dataclass(frozen=True)
class Journal:
    """A parsed, schema-validated journal."""

    header: dict
    events: list[dict]

    @property
    def strategy(self) -> str:
        return self.header["strategy"]

    @property
    def seed(self) -> int:
        return int(self.header["seed"])

    @property
    def pool_sha(self) -> str:
        return self.header["pool_sha"]

    @property
    def corpus_spec(self) -> "dict | None":
        return self.header.get("corpus")

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(**self.header["service"])

    def quality_config(self):
        """The recorded quality config, or ``None`` for quality-free runs."""
        spec = self.header.get("quality")
        if spec is None:
            return None
        from ..quality import QualityConfig

        return QualityConfig.from_dict(spec)

    def adaptivity(self) -> dict:
        """The recorded estimator/bandit config; journals recorded before
        the adaptivity header key default to the paper's behaviour."""
        spec = self.header.get("adaptivity") or {}
        return {
            "estimator": spec.get("estimator", "plain"),
            "bandit": spec.get("bandit", "off"),
            "tier_policy": spec.get("tier_policy", "streak"),
        }


def load_journal(path: "str | Path") -> Journal:
    """Parse and validate a journal file; raises :class:`ReplayError` on
    malformed lines, schema drift, or a version mismatch."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ReplayError(f"journal {path} is empty")
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReplayError(f"{path}:{lineno}: not JSON: {exc}") from None
        if not isinstance(record, dict) or "type" not in record:
            raise ReplayError(f"{path}:{lineno}: not a journal record")
        records.append((lineno, record))
    lineno, header = records[0]
    if header["type"] != "header":
        raise ReplayError(f"{path}:{lineno}: first record must be the header")
    if header.get("version") != JOURNAL_VERSION:
        raise ReplayError(
            f"{path}: journal version {header.get('version')!r}, "
            f"this build reads {JOURNAL_VERSION}"
        )
    for key in ("strategy", "seed", "service", "pool_sha"):
        if key not in header:
            raise ReplayError(f"{path}: header is missing {key!r}")
    events = []
    for lineno, record in records[1:]:
        event_type = record["type"]
        required = _EVENT_FIELDS.get(event_type)
        if required is None:
            raise ReplayError(
                f"{path}:{lineno}: unknown event type {event_type!r} "
                f"(schema drift?)"
            )
        missing = sorted(required - set(record))
        if missing:
            raise ReplayError(
                f"{path}:{lineno}: {event_type} event is missing {missing}"
            )
        if record.get("seq") != len(events) + 1:
            raise ReplayError(
                f"{path}:{lineno}: seq {record.get('seq')!r}, "
                f"expected {len(events) + 1} (truncated or spliced journal?)"
            )
        events.append(record)
    return Journal(header=header, events=events)


def pool_from_corpus_spec(spec: dict) -> TaskPool:
    """Rebuild the recorded corpus from the header's ``corpus`` spec.

    A sharded daemon serves a disjoint slice of the full corpus; its spec
    carries ``{"shard": {"index": k, "count": n}}`` and the rebuilt pool is
    re-sliced the same way, so the journal's ``pool_sha`` matches the
    shard's actual startup pool.
    """
    if not isinstance(spec, dict) or spec.get("kind") != "crowdflower":
        raise ReplayError(
            f"cannot rebuild corpus from spec {spec!r}; pass the pool explicitly"
        )
    from ..data import CrowdFlowerConfig, generate_crowdflower_corpus

    corpus = generate_crowdflower_corpus(
        CrowdFlowerConfig(n_tasks=int(spec["n_tasks"])), rng=int(spec["seed"])
    )
    pool = corpus.pool
    shard = spec.get("shard")
    if shard is not None:
        from .shard import shard_slice

        pool = shard_slice(pool, int(shard["index"]), int(shard["count"]))
    return pool


# -- replay -----------------------------------------------------------------


@dataclass(frozen=True)
class ReplayVariant:
    """One configuration to replay a journal under.

    ``engine_semantics`` routes each solve through the engine's exact
    worker-process code path (pickle round-trip of the slimmed instance,
    :func:`repro.serve.engine._solve_blob`) but in-process — proving the
    process boundary itself changes nothing.  ``shm_shipping`` (implies
    engine semantics) goes further: each solve publishes its candidates
    into a real shared-memory segment and ships a
    :class:`~repro.serve.engine.ShmSolveRequest` of index arrays through
    the same blob path, proving zero-copy shipping is bit-identical to
    pickling the instance.  Kernel overrides select the oracle kernels;
    ``pinned_solver`` forces every solve (and non-adaptive register) onto
    one ladder tier regardless of what was recorded.
    """

    label: str = "in-loop"
    engine_semantics: bool = False
    shm_shipping: bool = False
    jaccard_kernel: "str | None" = None
    lsap_kernel: "str | None" = None
    pinned_solver: "str | None" = None


@dataclass(frozen=True)
class Divergence:
    """The first point where a replay stopped matching the journal."""

    seq: int
    event_type: str
    field: str
    recorded: object
    replayed: object
    lease_id: "int | None" = None
    worker_id: "str | None" = None
    trace_ids: "tuple[str, ...] | None" = None

    def describe(self) -> str:
        where = f"seq {self.seq} ({self.event_type})"
        if self.lease_id is not None:
            where += f" lease {self.lease_id}"
        if self.worker_id is not None:
            where += f" worker {self.worker_id!r}"
        traces = (
            f" [traces: {', '.join(self.trace_ids)}]" if self.trace_ids else ""
        )
        return (
            f"{where}: {self.field} recorded={self.recorded!r} "
            f"replayed={self.replayed!r}{traces}"
        )


@dataclass
class ReplayReport:
    """Outcome of one replay pass."""

    variant: str
    events_applied: int = 0
    registers: int = 0
    completions: int = 0
    arrivals: int = 0
    solves_committed: int = 0
    solves_abandoned: int = 0
    displays_checked: int = 0
    disjointness_violations: int = 0
    state_verified: bool = False
    divergence: "Divergence | None" = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.disjointness_violations == 0

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "ok": self.ok,
            "events_applied": self.events_applied,
            "registers": self.registers,
            "completions": self.completions,
            "arrivals": self.arrivals,
            "solves_committed": self.solves_committed,
            "solves_abandoned": self.solves_abandoned,
            "displays_checked": self.displays_checked,
            "disjointness_violations": self.disjointness_violations,
            "state_verified": self.state_verified,
            "divergence": (
                None if self.divergence is None else self.divergence.describe()
            ),
        }


def _first_mismatch(recorded: dict, replayed: dict) -> "tuple | None":
    for key in sorted(set(recorded) | set(replayed)):
        if recorded.get(key) != replayed.get(key):
            return key, recorded.get(key), replayed.get(key)
    return None


def _run_prepared(
    prepared: PreparedSolve, variant: ReplayVariant
) -> dict[str, tuple[str, ...]]:
    """The solve itself, under in-loop, engine, or zero-copy semantics."""
    if variant.shm_shipping:
        return _run_prepared_shm(prepared)
    if not variant.engine_semantics:
        return execute_prepared(prepared)
    # The engine's exact worker path: slim the instance (the worker
    # recomputes diversity from the keyword matrix), pickle, solve the
    # unpickled copy.  Run here in-process; determinism must not care.
    from .engine import EngineRequest, _solve_blob

    slim_instance = copy.copy(prepared.instance)
    slim_instance.__dict__.pop("diversity", None)
    request = EngineRequest(
        worker_ids=tuple(prepared.worker_ids),
        instance=slim_instance,
        solver_name=prepared.solver_name,
        seed=prepared.seed,
    )
    blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
    return _solve_blob(blob).assigned


def _run_prepared_shm(prepared: PreparedSolve) -> dict[str, tuple[str, ...]]:
    """The engine's zero-copy path, end to end, against a real segment.

    Publishes this solve's candidates into a throwaway
    :class:`~repro.serve.shm.TaskMatrixStore`, ships a
    :class:`~repro.serve.engine.ShmSolveRequest` through the same pickled
    blob the process pool would carry, and translates the worker's
    synthetic positional ids back — exactly the live engine's shm branch,
    minus the process boundary the plain engine variant already covers.
    """
    from .engine import ShmSolveRequest, _solve_blob
    from .shm import TaskMatrixStore

    candidates = prepared.candidates
    instance = prepared.instance
    store = TaskMatrixStore(
        candidates, n_bits=instance.workers.matrix.shape[1]
    )
    try:
        rows = store.rows_for(candidates)
        ref = store.acquire()
        request = ShmSolveRequest(
            worker_ids=tuple(prepared.worker_ids),
            worker_matrix=instance.workers.matrix,
            alphas=instance.alphas(),
            betas=instance.betas(),
            segment=ref,
            row_indices=rows,
            x_max=instance.x_max,
            solver_name=prepared.solver_name,
            seed=prepared.seed,
        )
        blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
        assigned = _solve_blob(blob).assigned
        store.release(ref.version)
    finally:
        store.close()
    return {
        w: tuple(candidates[int(s)].task_id for s in ids)
        for w, ids in assigned.items()
    }


@dataclass
class _ReplayState:
    service: AssignmentService
    task_index: dict
    displayed_ever: set = field(default_factory=set)
    leases: dict = field(default_factory=dict)
    lease_traces: dict = field(default_factory=dict)
    quality: "object | None" = None  # QualityController when recorded with one

    def end_payload(self) -> dict:
        """The state the ``end``/snapshot fingerprints cover (must mirror
        :meth:`repro.serve.app.AssignmentDaemon._state_payload`)."""
        payload = {
            "service": self.service.snapshot_state(),
            "displayed_ever": sorted(self.displayed_ever),
        }
        if self.quality is not None:
            payload["quality"] = self.quality.state_dict()
        return payload


def replay_journal(
    journal: Journal,
    pool: TaskPool,
    variant: "ReplayVariant | None" = None,
    verify_pool: bool = True,
) -> ReplayReport:
    """Re-drive a fresh service from ``journal`` and check bit-identity."""
    variant = variant or ReplayVariant()
    if verify_pool:
        actual = pool_fingerprint(pool)
        if actual != journal.pool_sha:
            raise ReplayError(
                f"corpus mismatch: journal was recorded against pool "
                f"{journal.pool_sha[:12]}…, got {actual[:12]}…"
            )
    report = ReplayReport(variant=variant.label)
    quality_config = journal.quality_config()
    quality = None
    serving_pool = pool
    if quality_config is not None:
        # The controller sees the full corpus (the gold bank lives there);
        # the service serves the corpus minus the holdout — the same split
        # the recording daemon made.
        from ..quality import QualityController

        quality = QualityController(pool, quality_config)
        serving_pool = QualityController.serving_pool(pool, quality_config)
    # Rebuild the recorded estimator/bandit stack exactly as the daemon did
    # (including the Thompson stream derived from the journal seed), so a
    # bandit-policy journal replays its draw sequence bit-identically.
    estimator, weight_policy = build_adaptivity(
        journal.adaptivity(), seed=journal.seed
    )
    state = _ReplayState(
        service=AssignmentService(
            serving_pool,
            journal.strategy,
            journal.service_config(),
            estimator=estimator,
            rng=journal.seed,
            weight_policy=weight_policy,
        ),
        task_index={t.task_id: t for t in serving_pool},
        quality=quality,
    )
    if quality is not None:
        # Same seam the daemon wires: reputation scales the relevance term.
        state.service.set_reputation_provider(quality.reputation.mean)
    with contextlib.ExitStack() as stack:
        if variant.jaccard_kernel is not None:
            stack.enter_context(use_kernel("jaccard", variant.jaccard_kernel))
        if variant.lsap_kernel is not None:
            stack.enter_context(use_kernel("lsap", variant.lsap_kernel))
        for event in journal.events:
            divergence = _apply_event(event, state, variant, report)
            if divergence is not None:
                report.divergence = divergence
                return report
            report.events_applied += 1
    return report


def _check_display(payload: dict, state: _ReplayState, report: ReplayReport) -> None:
    """The daemon's C1/C2 guard, re-run over the replayed displays."""
    shown = tuple(payload["task_ids"]) + tuple(payload["random_pad_ids"])
    if len(set(shown)) != len(shown) or state.displayed_ever & set(shown):
        report.disjointness_violations += 1
    state.displayed_ever.update(shown)
    report.displays_checked += 1


def _apply_event(
    event: dict,
    state: _ReplayState,
    variant: ReplayVariant,
    report: ReplayReport,
) -> "Divergence | None":
    event_type = event["type"]
    seq = event["seq"]
    service = state.service

    if event_type == "restore":
        snapshot = event["state"]
        service.restore_state(snapshot["service"], state.task_index)
        # Tasks admitted before the snapshot are rebuilt from its own
        # arrival log; future events may reference them by id.
        for task in service.admitted_tasks():
            state.task_index[task.task_id] = task
        state.displayed_ever = set(snapshot["displayed_ever"])
        if state.quality is not None:
            if "quality" in snapshot:
                state.quality.load_state_dict(snapshot["quality"])
            state.quality.on_admitted(service.admitted_tasks())
        return None

    if event_type == "register":
        return _apply_register(event, state, variant, report)

    if event_type == "complete":
        worker_id = event["worker_id"]
        task_id = event["task_id"]
        is_alias = state.quality is not None and state.quality.is_quality_task(
            task_id
        )
        if is_alias:
            # Gold/replica aliases never reached the service when recorded;
            # they route straight to the quality layer here too.
            state.quality.on_answer(worker_id, task_id, event.get("answer"))
            report.completions += 1
            return None
        try:
            service.observe_completion(worker_id, task_id)
        except Exception as exc:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="completion",
                recorded="accepted",
                replayed=f"{type(exc).__name__}: {exc}",
                worker_id=worker_id,
                trace_ids=(event["trace_id"],) if event.get("trace_id") else None,
            )
        if state.quality is not None:
            state.quality.on_answer(worker_id, task_id, event.get("answer"))
        report.completions += 1
        return None

    if event_type == "probe":
        if state.quality is None:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="quality",
                recorded=event["aliases"],
                replayed=None,
                worker_id=event["worker_id"],
            )
        minted = state.quality.on_display(
            event["worker_id"], event["iteration"]
        )
        minted_ids = [task.task_id for task in minted]
        if minted_ids != list(event["aliases"]):
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="aliases",
                recorded=event["aliases"],
                replayed=minted_ids,
                worker_id=event["worker_id"],
            )
        state.displayed_ever.update(minted_ids)
        return None

    if event_type == "tick":
        if state.quality is not None:
            state.quality.on_tick()
        return None

    if event_type == "task_arrival":
        n_keywords = len(next(iter(state.task_index.values())).vector)
        tasks = []
        for spec in event["tasks"]:
            vector = np.zeros(n_keywords, dtype=bool)
            if spec["interest"]:
                vector[np.asarray(spec["interest"], dtype=int)] = True
            tasks.append(
                Task(
                    task_id=spec["task_id"],
                    vector=vector,
                    group=spec.get("group", ""),
                    title=spec.get("title", ""),
                    reward=float(spec.get("reward", 0.05)),
                    n_questions=int(spec.get("n_questions", 1)),
                )
            )
        try:
            service.admit_tasks(tasks)
        except Exception as exc:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="admission",
                recorded="admitted",
                replayed=f"{type(exc).__name__}: {exc}",
                trace_ids=(event["trace_id"],) if event.get("trace_id") else None,
            )
        for task in tasks:
            state.task_index[task.task_id] = task
        if state.quality is not None:
            state.quality.on_admitted(tasks)
        report.arrivals += 1
        return None

    if event_type == "unregister":
        removed = service.unregister_worker(event["worker_id"])
        if removed and state.quality is not None:
            state.quality.on_unregister(event["worker_id"])
        if not removed:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="registered",
                recorded=True,
                replayed=False,
                worker_id=event["worker_id"],
            )
        return None

    if event_type == "handoff_out":
        worker_id = event["worker_id"]
        recorded_blob = event["state"]
        try:
            exported = service.export_worker(worker_id)
        except Exception as exc:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="export",
                recorded="exported",
                replayed=f"{type(exc).__name__}: {exc}",
                worker_id=worker_id,
            )
        mismatch = _first_mismatch(recorded_blob.get("service", {}), exported)
        if mismatch is not None:
            field_name, rec, rep = mismatch
            return Divergence(
                seq=seq,
                event_type=event_type,
                field=field_name,
                recorded=rec,
                replayed=rep,
                worker_id=worker_id,
            )
        service.unregister_worker(worker_id)
        return None

    if event_type == "handoff_in":
        worker_id = event["worker_id"]
        blob = event["state"]
        n_keywords = len(next(iter(state.task_index.values())).vector)
        for spec in blob.get("tasks", ()):
            vector = np.zeros(n_keywords, dtype=bool)
            if spec["interest"]:
                vector[np.asarray(spec["interest"], dtype=int)] = True
            state.task_index.setdefault(
                spec["task_id"],
                Task(
                    task_id=spec["task_id"],
                    vector=vector,
                    group=spec.get("group", ""),
                    title=spec.get("title", ""),
                    reward=float(spec.get("reward", 0.05)),
                    n_questions=int(spec.get("n_questions", 1)),
                ),
            )
        try:
            service.import_worker(worker_id, blob["service"], state.task_index)
        except Exception as exc:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="adopt",
                recorded="adopted",
                replayed=f"{type(exc).__name__}: {exc}",
                worker_id=worker_id,
            )
        display = blob["service"].get("display")
        if display is not None:
            # Mirror the daemon's C2 ledger: adopted display ids can never
            # reappear in this shard's disjoint pool, but the end-state
            # fingerprint covers the ledger, so replay must carry them.
            state.displayed_ever.update(display["task_ids"])
        return None

    if event_type == "lease":
        return _apply_lease(event, state, variant)

    if event_type == "commit":
        return _apply_commit(event, state, variant, report)

    if event_type == "abandon":
        prepared = state.leases.pop(event["lease_id"], None)
        state.lease_traces.pop(event["lease_id"], None)
        if prepared is None:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="lease",
                recorded=event["lease_id"],
                replayed=None,
                lease_id=event["lease_id"],
            )
        service.abandon_solve(prepared)
        report.solves_abandoned += 1
        return None

    if event_type == "snapshot":
        return None

    if event_type == "end":
        replayed_sha = state_fingerprint(state.end_payload())
        if replayed_sha != event["state_sha"]:
            return Divergence(
                seq=seq,
                event_type=event_type,
                field="state_sha",
                recorded=event["state_sha"],
                replayed=replayed_sha,
            )
        report.state_verified = True
        return None

    raise ReplayError(f"seq {seq}: unknown event type {event_type!r}")


def _apply_register(
    event: dict,
    state: _ReplayState,
    variant: ReplayVariant,
    report: ReplayReport,
) -> "Divergence | None":
    service = state.service
    recorded = event["event"]
    n_keywords = len(
        next(iter(state.task_index.values())).vector
    )
    vector = np.zeros(n_keywords, dtype=bool)
    if event["interest"]:
        vector[np.asarray(event["interest"], dtype=int)] = True
    solver_name = variant.pinned_solver or event["solver"]
    if solver_name != service.strategy:
        # The live daemon registers through the degradation controller's
        # active tier; reproduce that (or the pinned override) here.
        service.set_solver_provider(lambda: get_solver(solver_name))
    try:
        replayed = service.register_worker(
            Worker(event["worker_id"], vector),
            wall_time=recorded["wall_time"],
        )
    finally:
        service.set_solver_provider(None)
    report.registers += 1
    trace_ids = (event["trace_id"],) if event.get("trace_id") else None
    mismatch = _first_mismatch(recorded, event_payload(replayed))
    if mismatch is not None:
        field_name, rec, rep = mismatch
        return Divergence(
            seq=event["seq"],
            event_type="register",
            field=field_name,
            recorded=rec,
            replayed=rep,
            worker_id=event["worker_id"],
            trace_ids=trace_ids,
        )
    _check_display(recorded, state, report)
    return None


def _apply_lease(
    event: dict, state: _ReplayState, variant: ReplayVariant
) -> "Divergence | None":
    service = state.service
    seq = event["seq"]
    trace_ids = tuple(event["trace_ids"]) if event.get("trace_ids") else None
    solver_name = variant.pinned_solver or event["solver"]
    prepared = service.prepare_solve(event["worker_ids"], solver_name=solver_name)
    if prepared is None:
        return Divergence(
            seq=seq,
            event_type="lease",
            field="prepared",
            recorded="leased",
            replayed=None,
            lease_id=event["lease_id"],
            trace_ids=trace_ids,
        )
    checks = [
        ("worker_ids", event["worker_ids"], list(prepared.worker_ids)),
        ("seed", event["seed"], prepared.seed),
        ("n_candidates", event["n_candidates"], len(prepared.candidates)),
        (
            "candidates_sha",
            event["candidates_sha"],
            candidates_fingerprint(t.task_id for t in prepared.candidates),
        ),
    ]
    if variant.pinned_solver is None:
        checks.append(("solver", event["solver"], prepared.solver_name))
    for field_name, recorded, replayed in checks:
        if recorded != replayed:
            service.abandon_solve(prepared)
            return Divergence(
                seq=seq,
                event_type="lease",
                field=field_name,
                recorded=recorded,
                replayed=replayed,
                lease_id=event["lease_id"],
                trace_ids=trace_ids,
            )
    state.leases[event["lease_id"]] = prepared
    state.lease_traces[event["lease_id"]] = trace_ids
    return None


def _apply_commit(
    event: dict,
    state: _ReplayState,
    variant: ReplayVariant,
    report: ReplayReport,
) -> "Divergence | None":
    service = state.service
    seq = event["seq"]
    lease_id = event["lease_id"]
    trace_ids = state.lease_traces.pop(lease_id, None)
    prepared = state.leases.pop(lease_id, None)
    if prepared is None:
        return Divergence(
            seq=seq,
            event_type="commit",
            field="lease",
            recorded=lease_id,
            replayed=None,
            lease_id=lease_id,
            trace_ids=trace_ids,
        )
    assigned = _run_prepared(prepared, variant)
    replayed_events = service.commit_solve(
        prepared, assigned, event["wall_time"]
    )
    report.solves_committed += 1
    recorded_events = event["events"]
    workers_recorded = sorted(recorded_events)
    workers_replayed = sorted(replayed_events)
    if workers_recorded != workers_replayed:
        return Divergence(
            seq=seq,
            event_type="commit",
            field="workers",
            recorded=workers_recorded,
            replayed=workers_replayed,
            lease_id=lease_id,
            trace_ids=trace_ids,
        )
    for worker_id in workers_recorded:
        mismatch = _first_mismatch(
            recorded_events[worker_id], event_payload(replayed_events[worker_id])
        )
        if mismatch is not None:
            field_name, rec, rep = mismatch
            return Divergence(
                seq=seq,
                event_type="commit",
                field=field_name,
                recorded=rec,
                replayed=rep,
                lease_id=lease_id,
                worker_id=worker_id,
                trace_ids=trace_ids,
            )
        _check_display(recorded_events[worker_id], state, report)
    return None


def default_variants(
    pin_tier: "str | None" = None,
) -> list[ReplayVariant]:
    """The differential panel: every configuration that must agree."""
    variants = [
        ReplayVariant("in-loop"),
        ReplayVariant("engine", engine_semantics=True),
        ReplayVariant("engine+shm", engine_semantics=True, shm_shipping=True),
        ReplayVariant("jaccard-dense", jaccard_kernel="dense"),
        ReplayVariant("lsap-reference", lsap_kernel="reference"),
        ReplayVariant("lsap-warm", lsap_kernel="warm"),
        ReplayVariant(
            "engine+dense", engine_semantics=True, jaccard_kernel="dense"
        ),
    ]
    if pin_tier is not None:
        variants.append(ReplayVariant(f"pin:{pin_tier}", pinned_solver=pin_tier))
    return variants


def replay_differential(
    journal: Journal,
    pool: TaskPool,
    variants: "Sequence[ReplayVariant] | None" = None,
) -> list[ReplayReport]:
    """Replay one journal under every variant; one report each.

    Each variant replays against a fresh service, so reports are
    independent; the caller decides which divergences are fatal (a pinned
    tier diverging from a run recorded on a different tier is expected —
    that's the diagnostic).
    """
    return [
        replay_journal(journal, pool, variant)
        for variant in (variants if variants is not None else default_variants())
    ]

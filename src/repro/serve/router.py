"""The shard router: one thin asyncio front door over N assignment shards.

The router owns no assignment state — just the consistent-hash ring
(:class:`repro.serve.shard.HashRing`), one keep-alive
:class:`~repro.serve.protocol.HttpClient` per shard, and a per-worker cache
of the last display each worker was shown.  Every worker-scoped request
(``POST /workers``, ``POST /complete``, ``GET /display/{id}``,
``DELETE /workers/{id}``) is proxied to the ring owner of the worker id;
``POST /tasks`` batches are split by the ring owner of each *task* id;
``GET /metrics`` and ``GET /healthz`` fan out to every live shard and come
back aggregated.

Failure posture mirrors the shards' own degradation ladder: when a worker's
owner shard is unreachable, ``GET /display`` and ``POST /complete`` answer
``200`` from the router's last-display cache with ``"stale": true`` — a
worker keeps something to do while the shard restarts — and only a fresh
registration (no state to fall back on) sees ``502``.

Every routing decision is journaled (:class:`RoutingJournal`) with the ring
version that made it, and ring changes and worker handoffs are journaled as
they happen, so :func:`verify_routing_journal` can replay the whole routing
history against a rebuilt ring and prove that no request was ever sent to a
shard that did not own it.  Together with the per-shard flight journals
(which ``repro replay`` verifies bit-identically), this gives the sharded
topology the same end-to-end determinism story as the single daemon.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from .metrics import MetricsRegistry
from .protocol import (
    HttpError,
    Request,
    json_response,
    read_request,
    text_response,
)
from .shard import (
    HashRing,
    ShardCoordinator,
    ShardError,
    ShardSpec,
    shard_index,
    shard_key,
)

#: Layout version of the routing journal (header + event lines).
ROUTING_JOURNAL_VERSION = 1

#: Exceptions that mean "the shard is unreachable", as opposed to "the shard
#: answered with an error" — only the former triggers the stale-cache path.
_SHARD_DOWN = (ConnectionError, OSError, asyncio.IncompleteReadError, EOFError)


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs: where to listen and where to journal routing."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: JSONL routing journal (see :func:`verify_routing_journal`); ``None``
    #: disables journaling.
    journal_path: str | None = None
    #: Virtual nodes per shard on the hash ring.
    ring_replicas: int = 64


class RoutingJournal:
    """Append-only JSONL record of every routing decision and ring change.

    Line 1 is a header pinning the initial ring (member keys + replica
    count rebuild it exactly); every following line is one event:

    * ``route`` — a worker-scoped request went to ``shard`` under
      ``ring_version``;
    * ``ring`` — a member joined/left, bumping the version;
    * ``handoff`` — a drained worker moved ``from`` → ``to``.

    Deterministic and self-verifying: :func:`verify_routing_journal`
    replays the ring and re-derives every ``route``/``handoff`` owner.
    """

    def __init__(self, path: str, ring: HashRing, specs: list[ShardSpec]):
        self._file = open(path, "w", encoding="utf-8")
        self.seq = 0
        self._write(
            {
                "version": ROUTING_JOURNAL_VERSION,
                "kind": "routing",
                "ring": ring.to_dict(),
                "shards": [
                    {"index": s.index, "host": s.host, "port": s.port}
                    for s in specs
                ],
            }
        )

    def _write(self, payload: dict) -> None:
        self._file.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._file.flush()

    def record_route(
        self, op: str, worker_id: str, shard: int, ring_version: int
    ) -> None:
        self.seq += 1
        self._write(
            {
                "seq": self.seq,
                "type": "route",
                "op": op,
                "worker_id": worker_id,
                "shard": shard,
                "ring_version": ring_version,
            }
        )

    def record_ring(self, action: str, key: str, ring_version: int) -> None:
        self.seq += 1
        self._write(
            {
                "seq": self.seq,
                "type": "ring",
                "action": action,
                "key": key,
                "ring_version": ring_version,
            }
        )

    def record_handoff(
        self, worker_id: str, source: int, target: int, ring_version: int
    ) -> None:
        self.seq += 1
        self._write(
            {
                "seq": self.seq,
                "type": "handoff",
                "worker_id": worker_id,
                "from": source,
                "to": target,
                "ring_version": ring_version,
            }
        )

    def close(self) -> None:
        self._file.close()


def verify_routing_journal(path: str) -> dict:
    """Replay a routing journal and re-derive every decision it recorded.

    Rebuilds the ring from the header, applies each ``ring`` event in
    order, and checks that every ``route`` and ``handoff`` event named the
    shard the rebuilt ring owns for that worker id at that ring version.
    Returns ``{"events", "routes", "divergences": [str, ...]}``; an empty
    divergence list is the proof.
    """
    divergences: list[str] = []
    events = routes = 0
    with open(path, encoding="utf-8") as handle:
        header = json.loads(next(handle))
        if header.get("kind") != "routing":
            raise ShardError(f"{path} is not a routing journal")
        if header.get("version") != ROUTING_JOURNAL_VERSION:
            raise ShardError(
                f"routing journal version {header.get('version')!r} is not "
                f"supported (expected {ROUTING_JOURNAL_VERSION})"
            )
        ring = HashRing(
            header["ring"]["keys"], replicas=header["ring"]["replicas"]
        )
        if ring.version != header["ring"]["version"]:
            # The header version counts one bump per initial member; a
            # mismatch means the header was edited or the ring semantics
            # changed under the journal.
            divergences.append(
                f"header ring version {header['ring']['version']} != rebuilt "
                f"{ring.version}"
            )
        for line in handle:
            event = json.loads(line)
            events += 1
            kind = event["type"]
            if kind == "ring":
                if event["action"] == "add":
                    version = ring.add(event["key"])
                elif event["action"] == "remove":
                    version = ring.remove(event["key"])
                else:
                    divergences.append(
                        f"seq {event['seq']}: unknown ring action "
                        f"{event['action']!r}"
                    )
                    continue
                if version != event["ring_version"]:
                    divergences.append(
                        f"seq {event['seq']}: ring version {version} != "
                        f"recorded {event['ring_version']}"
                    )
            elif kind in ("route", "handoff"):
                routes += 1
                if ring.version != event["ring_version"]:
                    divergences.append(
                        f"seq {event['seq']}: decided at ring version "
                        f"{event['ring_version']}, journal is at {ring.version}"
                    )
                    continue
                owner = shard_index(ring.owner_of(event["worker_id"]))
                recorded = event["shard"] if kind == "route" else event["to"]
                if owner != recorded:
                    divergences.append(
                        f"seq {event['seq']}: worker {event['worker_id']!r} "
                        f"routed to shard {recorded}, ring owner is {owner}"
                    )
            else:
                divergences.append(
                    f"seq {event['seq']}: unknown event type {kind!r}"
                )
    return {"events": events, "routes": routes, "divergences": divergences}


class RouterDaemon:
    """The router process: ring + proxies + aggregations + drain."""

    def __init__(
        self, specs: list[ShardSpec], config: RouterConfig | None = None
    ):
        self.config = config or RouterConfig()
        self.coordinator = ShardCoordinator(
            specs, replicas=self.config.ring_replicas
        )
        self.registry = MetricsRegistry()
        r = self.registry
        self._requests = r.counter(
            "router_requests_total", "HTTP requests handled by the router"
        )
        self._errors = r.counter(
            "router_errors_total", "HTTP error responses sent by the router"
        )
        self._proxied = r.counter(
            "router_proxied_total", "Requests proxied to a shard"
        )
        self._stale = r.counter(
            "router_stale_responses_total",
            "Requests answered from the last-display cache (owner down)",
        )
        self._shard_errors = r.counter(
            "router_shard_errors_total",
            "Proxy attempts that found the owner shard unreachable",
        )
        self._drains = r.counter(
            "router_drains_total", "Shards drained and rebalanced"
        )
        # worker_id -> the last display payload any shard returned for it;
        # the stale-serving fallback when the owner shard is unreachable.
        self._last_display: dict[str, dict] = {}
        self._server: asyncio.AbstractServer | None = None
        self._started_at = time.monotonic()
        self._journal: RoutingJournal | None = None
        if self.config.journal_path:
            self._journal = RoutingJournal(
                self.config.journal_path, self.coordinator.ring, specs
            )

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coordinator.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        json_response(
                            exc.status, {"error": exc.message}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                writer.write(await self._dispatch(request))
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> bytes:
        self._requests.inc()
        keep_alive = request.keep_alive
        try:
            payload = await self._route(request)
            if isinstance(payload, bytes):
                return payload
            return json_response(200, payload, keep_alive=keep_alive)
        except HttpError as exc:
            self._errors.inc()
            return json_response(
                exc.status, {"error": exc.message}, keep_alive=keep_alive
            )
        except Exception as exc:  # never let one request kill the router
            self._errors.inc()
            return json_response(
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
            )

    async def _route(self, request: Request) -> object:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return await self._healthz()
        if path == "/metrics" and method == "GET":
            return text_response(
                200, await self._metrics(), keep_alive=request.keep_alive
            )
        if path == "/vocabulary" and method == "GET":
            return await self._forward_any("GET", "/vocabulary")
        if path == "/workers" and method == "POST":
            return await self._post_workers(request)
        if path == "/complete" and method == "POST":
            return await self._post_complete(request)
        if path == "/tasks" and method == "POST":
            return await self._post_tasks(request)
        if path.startswith("/display/") and method == "GET":
            return await self._get_display(path.removeprefix("/display/"))
        if path.startswith("/workers/") and method == "DELETE":
            return await self._delete_worker(path.removeprefix("/workers/"))
        if path.startswith("/admin/drain/") and method == "POST":
            return await self._drain_shard(path.removeprefix("/admin/drain/"))
        raise HttpError(404, f"no route for {method} {request.path}")

    # -- worker-scoped proxies ----------------------------------------------

    def _owner(self, worker_id: str) -> int:
        try:
            return self.coordinator.shard_for(worker_id)
        except ShardError as exc:
            raise HttpError(503, str(exc)) from None

    def _record_route(self, op: str, worker_id: str, shard: int) -> None:
        if self._journal is not None:
            self._journal.record_route(
                op, worker_id, shard, self.coordinator.ring.version
            )

    async def _proxy(
        self, shard: int, method: str, path: str, payload: object | None = None
    ) -> tuple[int, object]:
        self._proxied.inc()
        return await self.coordinator.request(shard, method, path, payload)

    def _cache_display(self, worker_id: str, body: object) -> None:
        """Remember the display a shard just returned for this worker."""
        if isinstance(body, dict):
            display = body.get("display")
            if isinstance(display, dict):
                self._last_display[worker_id] = display

    def _relay(self, status: int, body: object) -> object:
        """Pass a shard's response through, re-raising its errors."""
        if status >= 400:
            message = (
                body.get("error", "shard error")
                if isinstance(body, dict)
                else str(body)
            )
            raise HttpError(status, message)
        return body

    async def _post_workers(self, request: Request) -> object:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise HttpError(400, "worker_id must be a non-empty string")
        shard = self._owner(worker_id)
        self._record_route("register", worker_id, shard)
        try:
            status, response = await self._proxy(
                shard, "POST", "/workers", body
            )
        except _SHARD_DOWN:
            # A fresh registration has no cached state to serve from.
            self._shard_errors.inc()
            raise HttpError(
                502, f"shard {shard} (owner of {worker_id!r}) is unreachable"
            ) from None
        self._cache_display(worker_id, response)
        return self._relay(status, response)

    async def _post_complete(self, request: Request) -> object:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise HttpError(400, "worker_id must be a non-empty string")
        shard = self._owner(worker_id)
        self._record_route("complete", worker_id, shard)
        try:
            status, response = await self._proxy(
                shard, "POST", "/complete", body
            )
        except _SHARD_DOWN:
            self._shard_errors.inc()
            return self._stale_payload(
                worker_id,
                shard,
                extra={"completed": body.get("task_id"), "reassigned": False},
            )
        self._cache_display(worker_id, response)
        return self._relay(status, response)

    async def _get_display(self, worker_id: str) -> object:
        if not worker_id:
            raise HttpError(400, "worker id missing from path")
        shard = self._owner(worker_id)
        self._record_route("display", worker_id, shard)
        try:
            status, response = await self._proxy(
                shard, "GET", f"/display/{worker_id}"
            )
        except _SHARD_DOWN:
            self._shard_errors.inc()
            return self._stale_payload(worker_id, shard)
        self._cache_display(worker_id, response)
        return self._relay(status, response)

    async def _delete_worker(self, worker_id: str) -> object:
        if not worker_id:
            raise HttpError(400, "worker id missing from path")
        shard = self._owner(worker_id)
        self._record_route("unregister", worker_id, shard)
        try:
            status, response = await self._proxy(
                shard, "DELETE", f"/workers/{worker_id}"
            )
        except _SHARD_DOWN:
            # Unregistration is idempotent on the shard; the client should
            # retry once the shard is back rather than believe a fake ack.
            self._shard_errors.inc()
            raise HttpError(
                502, f"shard {shard} (owner of {worker_id!r}) is unreachable"
            ) from None
        self._last_display.pop(worker_id, None)
        return self._relay(status, response)

    def _stale_payload(
        self, worker_id: str, shard: int, extra: "dict | None" = None
    ) -> dict:
        """The never-5xx fallback: the last display this router saw.

        The cached display is exactly what the shard last returned — C2
        guarantees the shard will never have displayed those tasks to
        anyone else meanwhile — so a worker keeps working its current
        display while the owner restarts.  Only a worker the router has
        never seen a display for gets a 404.
        """
        display = self._last_display.get(worker_id)
        if display is None:
            raise HttpError(
                404,
                f"shard {shard} (owner of {worker_id!r}) is unreachable and "
                f"the router holds no cached display",
            )
        self._stale.inc()
        payload = {"worker_id": worker_id, "stale": True, "display": display}
        if extra:
            payload.update(extra)
        return payload

    # -- task ingestion -------------------------------------------------------

    async def _post_tasks(self, request: Request) -> object:
        """Split a task batch across its ring owners.

        Each task id hashes to the shard that will own it for its lifetime
        (lease, display, completion all happen on that shard — disjoint
        from every other shard's pool by construction).  The split is NOT
        atomic across shards: each sub-batch is all-or-nothing on its
        shard, and the response reports per-shard outcomes so a client can
        retry just the rejected slice.
        """
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("tasks"), list
        ):
            raise HttpError(400, "expected {'tasks': [...]}")
        by_shard: dict[int, list[dict]] = {}
        for entry in body["tasks"]:
            if not isinstance(entry, dict) or not isinstance(
                entry.get("task_id"), str
            ):
                raise HttpError(400, "each task needs a string task_id")
            by_shard.setdefault(
                self._owner(entry["task_id"]), []
            ).append(entry)
        admitted = 0
        remaining = 0
        per_shard: dict[str, dict] = {}
        failures = 0
        for shard, entries in sorted(by_shard.items()):
            try:
                status, response = await self._proxy(
                    shard, "POST", "/tasks", {"tasks": entries}
                )
            except _SHARD_DOWN:
                self._shard_errors.inc()
                per_shard[str(shard)] = {"error": "shard unreachable"}
                failures += 1
                continue
            if status >= 400 or not isinstance(response, dict):
                message = (
                    response.get("error", "rejected")
                    if isinstance(response, dict)
                    else str(response)
                )
                per_shard[str(shard)] = {"error": message, "status": status}
                failures += 1
                continue
            admitted += len(response.get("admitted", []))
            remaining += int(response.get("remaining_tasks", 0))
            per_shard[str(shard)] = {
                "admitted": len(response.get("admitted", []))
            }
        if failures and failures == len(by_shard):
            raise HttpError(409, f"every shard rejected the batch: {per_shard}")
        return {
            "admitted": admitted,
            "remaining_tasks": remaining,
            "per_shard": per_shard,
        }

    # -- drain / rebalance ----------------------------------------------------

    async def _drain_shard(self, index_text: str) -> dict:
        """Drain one shard and rebalance its workers onto the survivors.

        Runs the coordinator protocol (ring remove → quiesce → export →
        adopt on the new ring owners) and journals the ring change plus
        every worker movement, so the routing journal stays verifiable
        across the topology change.  The drained shard keeps serving its
        ``/admin`` surface but receives no further routed traffic.
        """
        try:
            index = int(index_text)
        except ValueError:
            raise HttpError(400, f"bad shard index {index_text!r}") from None
        try:
            result = await self.coordinator.drain(index)
        except ShardError as exc:
            raise HttpError(409, str(exc)) from None
        except _SHARD_DOWN as exc:
            self._shard_errors.inc()
            raise HttpError(
                502, f"shard {index} became unreachable mid-drain: {exc}"
            ) from None
        self._drains.inc()
        if self._journal is not None:
            self._journal.record_ring(
                "remove", shard_key(index), result["ring_version"]
            )
            for worker_id, target in sorted(result["moved"].items()):
                self._journal.record_handoff(
                    worker_id, index, target, result["ring_version"]
                )
        return result

    # -- aggregations ---------------------------------------------------------

    async def _forward_any(self, method: str, path: str) -> object:
        """Forward to the first reachable live shard (shared-nothing data)."""
        last_error: Exception | None = None
        for shard in self.coordinator.live_indices():
            try:
                status, response = await self._proxy(shard, method, path)
            except _SHARD_DOWN as exc:
                self._shard_errors.inc()
                last_error = exc
                continue
            return self._relay(status, response)
        raise HttpError(503, f"no shard reachable for {path}: {last_error}")

    async def _healthz(self) -> dict:
        shards: dict[str, dict] = {}
        workers = remaining = 0
        degraded = False
        for shard in sorted(self.coordinator.specs):
            live = shard in self.coordinator.live_indices()
            try:
                status, response = await self.coordinator.request(
                    shard, "GET", "/healthz"
                )
            except _SHARD_DOWN:
                self._shard_errors.inc()
                shards[str(shard)] = {"status": "unreachable", "live": live}
                degraded = degraded or live
                continue
            if not isinstance(response, dict):
                response = {"status": "unparseable"}
            shards[str(shard)] = {
                "status": response.get("status", "unknown"),
                "live": live,
                "workers": response.get("workers", 0),
                "remaining_tasks": response.get("remaining_tasks", 0),
                "draining": response.get("draining", False),
            }
            if live:
                workers += int(response.get("workers", 0))
                remaining += int(response.get("remaining_tasks", 0))
                degraded = degraded or response.get("status") != "ok"
        return {
            "status": "degraded" if degraded else "ok",
            "role": "router",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "workers": workers,
            "remaining_tasks": remaining,
            "ring": self.coordinator.ring.to_dict(),
            "shards": shards,
        }

    async def _metrics(self) -> str:
        """Sum the shards' Prometheus expositions line-by-line.

        Counters and gauges with identical name+labels add; histogram
        buckets and sums add too (they are just counters).  Comment lines
        (`# HELP`/`# TYPE`) pass through once.  The router's own registry
        is appended after the aggregate.
        """
        order: list[str] = []
        values: dict[str, float] = {}
        comments: list[str] = []
        seen_comments: set[str] = set()
        for shard in self.coordinator.live_indices():
            try:
                status, response = await self.coordinator.request(
                    shard, "GET", "/metrics"
                )
            except _SHARD_DOWN:
                self._shard_errors.inc()
                continue
            if status != 200 or not isinstance(response, str):
                continue
            for line in response.splitlines():
                if not line.strip():
                    continue
                if line.startswith("#"):
                    if line not in seen_comments:
                        seen_comments.add(line)
                        comments.append(line)
                    continue
                key, _, value_text = line.rpartition(" ")
                if not key:
                    continue
                try:
                    value = float(value_text)
                except ValueError:
                    continue
                if key not in values:
                    order.append(key)
                    values[key] = 0.0
                values[key] += value
        lines = comments + [
            f"{key} {_format_value(values[key])}" for key in order
        ]
        return "\n".join(lines) + "\n" + self.registry.render()


def _format_value(value: float) -> str:
    """Prometheus-style numbers: integral values without the trailing .0."""
    return str(int(value)) if value == int(value) else repr(value)


async def run_router(
    specs: list[ShardSpec], config: RouterConfig | None = None
) -> None:
    """Convenience runner: route until cancelled / interrupted."""
    router = RouterDaemon(specs, config)
    await router.serve_forever()

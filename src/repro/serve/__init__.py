"""Online serving layer: the assignment daemon and its supporting parts.

The paper's deployment runs assignment "in the background while workers
complete tasks"; this package is that service boundary as a first-class
subsystem — a dependency-free asyncio JSON-over-HTTP daemon
(:mod:`repro.serve.app`) whose solves are micro-batched
(:mod:`repro.serve.scheduler`), whose pairwise-diversity matrices come from
an incremental cache (:mod:`repro.serve.cache`), and whose behaviour is
observable via Prometheus metrics (:mod:`repro.serve.metrics`) and
request-scoped stage traces (:mod:`repro.serve.tracing`).  Failure
behaviour — deadlines, graceful degradation down the paper's own solver
ladder, deterministic fault injection, crash-safe snapshots — lives in
:mod:`repro.serve.resilience`.  A closed-loop load generator
(:mod:`repro.serve.loadgen`) drives and verifies a running daemon, and a
deterministic flight recorder (:mod:`repro.serve.replay`) journals every
request and solve so a run can be replayed bit-for-bit offline.  Horizontal
scale-out lives in :mod:`repro.serve.shard` (consistent-hash worker
partitioning, disjoint corpus slices, the drain/handoff protocol) and
:mod:`repro.serve.router` (the thin routing front door with its own
verifiable routing journal).  See docs/SERVING.md.
"""

from .app import AssignmentDaemon, ServeConfig, run_daemon
from .cache import IncrementalDiversityCache
from .engine import SolveEngine
from .loadgen import (
    LoadgenConfig,
    LoadgenResult,
    run_loadgen,
    run_self_contained,
    run_sharded,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .protocol import HttpClient, HttpError
from .router import (
    RouterConfig,
    RouterDaemon,
    RoutingJournal,
    run_router,
    verify_routing_journal,
)
from .replay import (
    Divergence,
    FlightRecorder,
    Journal,
    ReplayError,
    ReplayReport,
    ReplayVariant,
    default_variants,
    load_journal,
    pool_fingerprint,
    replay_differential,
    replay_journal,
)
from .resilience import (
    DegradationController,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ResilienceConfig,
    degradation_ladder,
)
from .scheduler import SolveScheduler
from .shard import (
    HashRing,
    ShardCluster,
    ShardCoordinator,
    ShardError,
    ShardProcess,
    ShardSpec,
    shard_slice,
    spawn_shard_fleet,
)
from .tracing import (
    NULL_TRACE,
    SolveContext,
    Span,
    SpanMetrics,
    Trace,
    TraceRecorder,
    summarize_trace_file,
)

__all__ = [
    "AssignmentDaemon",
    "Counter",
    "DegradationController",
    "Divergence",
    "FaultInjector",
    "FaultPlan",
    "FlightRecorder",
    "Gauge",
    "HashRing",
    "Histogram",
    "HttpClient",
    "HttpError",
    "IncrementalDiversityCache",
    "InjectedFault",
    "Journal",
    "LoadgenConfig",
    "LoadgenResult",
    "MetricsRegistry",
    "NULL_TRACE",
    "ReplayError",
    "ReplayReport",
    "ReplayVariant",
    "ResilienceConfig",
    "RouterConfig",
    "RouterDaemon",
    "RoutingJournal",
    "ServeConfig",
    "ShardCluster",
    "ShardCoordinator",
    "ShardError",
    "ShardProcess",
    "ShardSpec",
    "SolveContext",
    "SolveEngine",
    "SolveScheduler",
    "Span",
    "SpanMetrics",
    "Trace",
    "TraceRecorder",
    "default_variants",
    "degradation_ladder",
    "load_journal",
    "pool_fingerprint",
    "replay_differential",
    "replay_journal",
    "run_daemon",
    "run_loadgen",
    "run_router",
    "run_self_contained",
    "run_sharded",
    "shard_slice",
    "spawn_shard_fleet",
    "verify_routing_journal",
]

"""Online serving layer: the assignment daemon and its supporting parts.

The paper's deployment runs assignment "in the background while workers
complete tasks"; this package is that service boundary as a first-class
subsystem — a dependency-free asyncio JSON-over-HTTP daemon
(:mod:`repro.serve.app`) whose solves are micro-batched
(:mod:`repro.serve.scheduler`), whose pairwise-diversity matrices come from
an incremental cache (:mod:`repro.serve.cache`), and whose behaviour is
observable via Prometheus metrics (:mod:`repro.serve.metrics`) and
request-scoped stage traces (:mod:`repro.serve.tracing`).  Failure
behaviour — deadlines, graceful degradation down the paper's own solver
ladder, deterministic fault injection, crash-safe snapshots — lives in
:mod:`repro.serve.resilience`.  A closed-loop load generator
(:mod:`repro.serve.loadgen`) drives and verifies a running daemon.  See
docs/SERVING.md.
"""

from .app import AssignmentDaemon, ServeConfig, run_daemon
from .cache import IncrementalDiversityCache
from .engine import SolveEngine
from .loadgen import LoadgenConfig, LoadgenResult, run_loadgen, run_self_contained
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .protocol import HttpClient, HttpError
from .resilience import (
    DegradationController,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ResilienceConfig,
    degradation_ladder,
)
from .scheduler import SolveScheduler
from .tracing import (
    NULL_TRACE,
    SolveContext,
    Span,
    SpanMetrics,
    Trace,
    TraceRecorder,
    summarize_trace_file,
)

__all__ = [
    "AssignmentDaemon",
    "Counter",
    "DegradationController",
    "FaultInjector",
    "FaultPlan",
    "Gauge",
    "Histogram",
    "HttpClient",
    "HttpError",
    "IncrementalDiversityCache",
    "InjectedFault",
    "LoadgenConfig",
    "LoadgenResult",
    "MetricsRegistry",
    "NULL_TRACE",
    "ResilienceConfig",
    "ServeConfig",
    "SolveContext",
    "SolveEngine",
    "SolveScheduler",
    "Span",
    "SpanMetrics",
    "Trace",
    "TraceRecorder",
    "degradation_ladder",
    "run_daemon",
    "run_loadgen",
    "run_self_contained",
    "summarize_trace_file",
]

"""Online serving layer: the assignment daemon and its supporting parts.

The paper's deployment runs assignment "in the background while workers
complete tasks"; this package is that service boundary as a first-class
subsystem — a dependency-free asyncio JSON-over-HTTP daemon
(:mod:`repro.serve.app`) whose solves are micro-batched
(:mod:`repro.serve.scheduler`), whose pairwise-diversity matrices come from
an incremental cache (:mod:`repro.serve.cache`), and whose behaviour is
observable via Prometheus metrics (:mod:`repro.serve.metrics`).  A
closed-loop load generator (:mod:`repro.serve.loadgen`) drives and verifies
a running daemon.  See docs/SERVING.md.
"""

from .app import AssignmentDaemon, ServeConfig, run_daemon
from .cache import IncrementalDiversityCache
from .loadgen import LoadgenConfig, LoadgenResult, run_loadgen, run_self_contained
from .metrics import Counter, Histogram, MetricsRegistry
from .protocol import HttpClient, HttpError
from .scheduler import SolveScheduler

__all__ = [
    "AssignmentDaemon",
    "Counter",
    "Histogram",
    "HttpClient",
    "HttpError",
    "IncrementalDiversityCache",
    "LoadgenConfig",
    "LoadgenResult",
    "MetricsRegistry",
    "ServeConfig",
    "SolveScheduler",
    "run_daemon",
    "run_loadgen",
    "run_self_contained",
]

"""Off-loop parallel solve engine.

The in-loop solve path runs synchronous numpy code on the event loop; every
batched HTA solve therefore stalls request handling for its full duration.
:class:`SolveEngine` moves the solve itself into a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **prepare** (event loop) — :meth:`AssignmentService.prepare_solve` leases
  a disjoint candidate set out of the pool and builds a picklable
  :class:`~repro.crowd.service.PreparedSolve`;
* **solve** (worker process) — :func:`_solve_request` runs the named solver
  on the shipped :class:`~repro.core.instance.HTAInstance` with a seeded
  RNG and returns the per-worker task ids plus its own wall time;
* **commit** (event loop) — :meth:`AssignmentService.commit_solve` restores
  the lease and installs the displays through the normal removal path.

Worker processes keep *warm* solver instances: the pool initializer
resolves every solver tier of the degradation ladder once per process, so a
tier switch under overload never pays construction cost mid-solve.  The
solve wall time measured inside the worker travels back with the outcome —
that is the degradation controller's solve-budget signal, unchanged in
meaning across the process boundary (queueing time is deliberately
excluded; the controller budgets the solver, not the pool).
"""

from __future__ import annotations

import asyncio
import copy
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.solvers import get_solver
from ..crowd.events import TasksAssigned
from .metrics import MetricsRegistry

if TYPE_CHECKING:
    from ..core.instance import HTAInstance
    from ..crowd.service import AssignmentService

#: Per-process warm solver cache, filled by the pool initializer.
_WARM_SOLVERS: dict[str, object] = {}


def _warm_worker(solver_names: tuple[str, ...]) -> None:
    """Pool initializer: resolve every ladder tier once per worker process."""
    for name in solver_names:
        _WARM_SOLVERS[name] = get_solver(name)


@dataclass(frozen=True)
class EngineRequest:
    """The picklable slice of a prepared solve shipped to a worker process."""

    worker_ids: tuple[str, ...]
    instance: "HTAInstance"
    solver_name: str
    seed: int


@dataclass(frozen=True)
class EngineOutcome:
    """What a worker process sends back: the assignment and its cost."""

    assigned: dict[str, tuple[str, ...]]
    objective: float
    solve_seconds: float
    pid: int


def _solve_blob(blob: bytes) -> EngineOutcome:
    """Unpickle an :class:`EngineRequest` shipped as bytes and solve it.

    The engine pickles the request itself on the event loop so the
    serialization cost is *measured* as loop occupancy instead of hiding in
    the executor's feeder thread; shipping pre-pickled bytes through the
    pool is then a cheap memcpy.
    """
    return _solve_request(pickle.loads(blob))


def _solve_request(request: EngineRequest) -> EngineOutcome:
    """Run one HTA solve in a pool worker (module-level: must pickle)."""
    solver = _WARM_SOLVERS.get(request.solver_name)
    if solver is None:  # cold fallback, e.g. a tier added after pool start
        solver = _WARM_SOLVERS[request.solver_name] = get_solver(request.solver_name)
    rng = np.random.default_rng(request.seed)
    started = time.perf_counter()
    result = solver.solve(request.instance, rng)
    elapsed = time.perf_counter() - started
    assigned = {
        w: tuple(result.assignment.tasks_of(w)) for w in request.worker_ids
    }
    return EngineOutcome(assigned, float(result.objective), elapsed, os.getpid())


class SolveEngine:
    """Ships scheduler batches to a warm process pool and commits the results.

    Args:
        service: The assignment service owning pool, workers, and displays.
        registry: Metrics sink; the engine owns the ``serve_engine_*``
            family (worker/queue/in-flight gauges, solve counter + errors,
            in-worker solve-seconds histogram).
        n_workers: Solver processes to keep warm (the ``--solver-workers``
            flag; the daemon only builds an engine when it is positive).
        solver_names: Solver tiers to pre-construct in every worker.
    """

    def __init__(
        self,
        service: "AssignmentService",
        registry: MetricsRegistry,
        n_workers: int,
        solver_names: tuple[str, ...] = (),
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._service = service
        self.n_workers = n_workers
        self._executor = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_warm_worker,
            initargs=(tuple(solver_names),),
        )
        self._slots = asyncio.Semaphore(n_workers)
        self._closed = False
        registry.gauge(
            "serve_engine_workers", "Solver worker processes in the pool"
        ).set(n_workers)
        self._queue_depth = registry.gauge(
            "serve_engine_queue_depth",
            "Solve batches waiting for a free worker process",
        )
        self._in_flight = registry.gauge(
            "serve_engine_in_flight",
            "Solve batches currently executing in worker processes",
        )
        self._solves = registry.counter(
            "serve_engine_solves_total", "Solve batches executed off-loop"
        )
        self._errors = registry.counter(
            "serve_engine_solve_errors_total", "Off-loop solve batches that raised"
        )
        self._solve_seconds = registry.histogram(
            "serve_engine_solve_seconds",
            "Solver wall time per batch, measured inside the worker process",
        )
        self._loop_seconds = registry.histogram(
            "serve_engine_loop_seconds",
            "Event-loop occupancy per off-loop solve: prepare + request "
            "serialization + commit (the non-overlappable cost)",
        )

    async def solve_batch(
        self,
        worker_ids,
        wall_time: float,
        solver_name: str | None = None,
        session_times: dict[str, float] | None = None,
    ) -> tuple[dict[str, TasksAssigned], float]:
        """Prepare on the loop, solve in a worker process, commit on the loop.

        Returns ``(events, solve_seconds)`` where ``solve_seconds`` is the
        solver wall time measured *inside* the worker — the degradation
        controller's budget signal — and ``0.0`` when there was nothing to
        solve.  On a worker-side failure the lease is released untouched and
        the exception propagates (the scheduler fails that batch's waiters).
        """
        if self._closed:
            raise RuntimeError("solve engine is closed")
        self._queue_depth.inc()
        try:
            await self._slots.acquire()
        finally:
            self._queue_depth.dec()
        try:
            prepare_started = time.perf_counter()
            prepared = self._service.prepare_solve(worker_ids, solver_name)
            if prepared is None:
                return {}, 0.0
            # Ship bits, not floats: drop the primed (k, k) diversity matrix
            # from the pickled copy — the worker recomputes it from the
            # boolean keyword matrix with the packed kernel, which is
            # bit-identical (differential suite) and far smaller on the wire.
            slim_instance = copy.copy(prepared.instance)
            slim_instance.__dict__.pop("diversity", None)
            request = EngineRequest(
                worker_ids=tuple(prepared.worker_ids),
                instance=slim_instance,
                solver_name=prepared.solver_name,
                seed=prepared.seed,
            )
            blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
            loop_busy = time.perf_counter() - prepare_started
            loop = asyncio.get_running_loop()
            self._in_flight.inc()
            try:
                outcome = await loop.run_in_executor(
                    self._executor, _solve_blob, blob
                )
            except BaseException:
                self._errors.inc()
                self._service.abandon_solve(prepared)
                raise
            finally:
                self._in_flight.dec()
            self._solves.inc()
            self._solve_seconds.observe(outcome.solve_seconds)
            commit_started = time.perf_counter()
            events = self._service.commit_solve(
                prepared, outcome.assigned, wall_time, session_times
            )
            loop_busy += time.perf_counter() - commit_started
            self._loop_seconds.observe(loop_busy)
            return events, outcome.solve_seconds
        finally:
            self._slots.release()

    def describe(self) -> dict:
        """Healthz block: pool size and current load."""
        return {
            "workers": self.n_workers,
            "queue_depth": int(self._queue_depth.value),
            "in_flight": int(self._in_flight.value),
            "solves": int(self._solves.value),
        }

    async def close(self) -> None:
        """Shut the worker pool down without blocking the event loop."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self._executor.shutdown(wait=True, cancel_futures=True)
        )

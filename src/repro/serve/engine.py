"""Off-loop parallel solve engine.

The in-loop solve path runs synchronous numpy code on the event loop; every
batched HTA solve therefore stalls request handling for its full duration.
:class:`SolveEngine` moves the solve itself into a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **prepare** (event loop) — :meth:`AssignmentService.prepare_solve` leases
  a disjoint candidate set out of the pool and builds a picklable
  :class:`~repro.crowd.service.PreparedSolve`;
* **solve** (worker process) — :func:`_solve_request` runs the named solver
  on the shipped :class:`~repro.core.instance.HTAInstance` with a seeded
  RNG and returns the per-worker task ids plus its own wall time;
* **commit** (event loop) — :meth:`AssignmentService.commit_solve` restores
  the lease and installs the displays through the normal removal path.

Worker processes keep *warm* solver instances: the pool initializer
resolves every solver tier of the degradation ladder once per process, so a
tier switch under overload never pays construction cost mid-solve.  The
wall times measured inside the worker (unpickle and solve) travel back with
the outcome — the solve time is the degradation controller's solve-budget
signal, unchanged in meaning across the process boundary (queueing time is
deliberately excluded; the controller budgets the solver, not the pool) —
and both become trace spans in every member request's trace.

A worker process dying mid-solve (OOM killer, fault injection) breaks the
whole :class:`ProcessPoolExecutor`, not just the one future; the engine
catches that, rebuilds a fresh warm pool, and fails only the affected
batch, so one crashed solve never takes the daemon's solve capacity down
with it (``serve_engine_pool_rebuilds_total`` counts these).
"""

from __future__ import annotations

import asyncio
import copy
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..core.instance import HTAInstance
from ..core.keywords import Vocabulary
from ..core.solvers import get_solver
from ..core.task import TaskPool
from ..core.worker import MotivationWeights, Worker, WorkerPool
from ..crowd.events import TasksAssigned
from ..perf.lsap_kernels import warm_context
from . import shm
from .metrics import MetricsRegistry
from .tracing import SolveContext, Span, SpanMetrics

if TYPE_CHECKING:
    from ..crowd.service import AssignmentService
    from .shm import ShmSegmentRef, TaskMatrixStore

#: Per-process warm solver cache, filled by the pool initializer.
_WARM_SOLVERS: dict[str, object] = {}

#: Per-process synthetic vocabularies keyed by keyword count; candidate
#: pools rebuilt from shared-memory rows only need *aligned* vectors, not
#: the daemon's keyword names, so one vocabulary per width is enough.
_SYNTH_VOCABS: dict[int, Vocabulary] = {}


def _synthetic_vocabulary(n_bits: int) -> Vocabulary:
    vocab = _SYNTH_VOCABS.get(n_bits)
    if vocab is None:
        vocab = _SYNTH_VOCABS[n_bits] = Vocabulary(
            [f"k{i}" for i in range(n_bits)]
        )
    return vocab


def _prewarm_instance() -> HTAInstance:
    """A tiny synthetic instance for first-dispatch warm-up solves."""
    rng = np.random.default_rng(0)
    vocab = _synthetic_vocabulary(8)
    matrix = rng.random((6, 8)) < 0.5
    tasks = TaskPool.from_trusted_matrix(
        [str(i) for i in range(6)], matrix, vocab
    )
    workers = WorkerPool(
        (Worker(f"w{i}", rng.random(8) < 0.5) for i in range(2)), vocab
    )
    return HTAInstance(tasks, workers, x_max=2)


def _warm_worker(
    solver_names: tuple[str, ...],
    shm_ref: "ShmSegmentRef | None" = None,
) -> None:
    """Pool initializer: make the first real dispatch indistinguishable
    from the hundredth.

    Resolving a solver tier is cheap; the expensive first-solve misses are
    the lazy numpy/solver code paths behind it — so each ladder tier runs
    one throwaway solve on a tiny synthetic instance here, off the serving
    clock.  The current shared-memory segment is decoded up front for the
    same reason, and workers nice themselves so the event loop wins the
    scheduler when a solve and request handling timeshare a core.
    """
    try:
        os.nice(5)
    except OSError:
        pass
    instance = _prewarm_instance()
    for name in solver_names:
        solver = _WARM_SOLVERS[name] = get_solver(name)
        try:
            solver.solve(instance, np.random.default_rng(0))
        except Exception:
            pass  # pre-warm must never break the pool
    shm.prefetch(shm_ref)


@dataclass(frozen=True)
class EngineRequest:
    """The picklable slice of a prepared solve shipped to a worker process.

    ``trace_id`` is the first member trace's id (debug correlation only);
    ``crash`` is the fault-injection seam — a worker receiving it dies
    mid-solve exactly like an OOM-killed process would.
    """

    worker_ids: tuple[str, ...]
    instance: "HTAInstance"
    solver_name: str
    seed: int
    trace_id: str | None = None
    crash: bool = False


@dataclass(frozen=True)
class ShmSolveRequest:
    """The zero-copy solve request: index arrays instead of an instance.

    The candidate keyword matrix lives in the shared-memory segment named
    by ``segment``; ``row_indices`` carve the candidate slice in lease
    order.  Only the per-batch worker data (a few dozen boolean rows plus
    alpha/beta vectors) rides the pickle — the payload is hundreds of
    bytes where :class:`EngineRequest` shipped the whole instance.

    The worker rebuilds the instance with *synthetic* task ids (``"0"`` …
    ``"k-1"``, the candidate positions); the engine translates them back to
    real ids before committing, so journals and displays are byte-identical
    to the pickled path.
    """

    worker_ids: tuple[str, ...]
    worker_matrix: np.ndarray
    alphas: np.ndarray
    betas: np.ndarray
    segment: "ShmSegmentRef"
    row_indices: np.ndarray
    x_max: int
    solver_name: str
    seed: int
    trace_id: str | None = None
    crash: bool = False


@dataclass(frozen=True)
class EngineOutcome:
    """What a worker process sends back: the assignment and its cost.

    ``solve_seconds`` and ``unpickle_seconds`` are wall times measured
    *inside* the worker — real stage durations for the request traces, not
    loop-side approximations.  ``solve_cpu_seconds`` is the same solve leg
    on the worker's process-CPU clock: on a host where solver processes
    timeshare a core, it isolates the solver's actual cost from scheduling
    delay (the signal the pre-warm parity gate watches).
    """

    assigned: dict[str, tuple[str, ...]]
    objective: float
    solve_seconds: float
    pid: int
    unpickle_seconds: float = 0.0
    solve_cpu_seconds: float = 0.0


def _solve_blob(blob: bytes) -> EngineOutcome:
    """Unpickle an :class:`EngineRequest` shipped as bytes and solve it.

    The engine pickles the request itself on the event loop so the
    serialization cost is *measured* as loop occupancy instead of hiding in
    the executor's feeder thread; shipping pre-pickled bytes through the
    pool is then a cheap memcpy.
    """
    started = time.perf_counter()
    request = pickle.loads(blob)
    unpickle_seconds = time.perf_counter() - started
    if isinstance(request, ShmSolveRequest):
        outcome = _solve_shm_request(request)
    else:
        outcome = _solve_request(request)
    return replace(outcome, unpickle_seconds=unpickle_seconds)


def _warm_solver(solver_name: str):
    solver = _WARM_SOLVERS.get(solver_name)
    if solver is None:  # cold fallback, e.g. a tier added after pool start
        solver = _WARM_SOLVERS[solver_name] = get_solver(solver_name)
    return solver


def _solve_request(request: EngineRequest) -> EngineOutcome:
    """Run one HTA solve in a pool worker (module-level: must pickle)."""
    if request.crash:
        # Injected worker death: skip every interpreter-level cleanup, like
        # a SIGKILL would.  The parent sees a BrokenProcessPool.
        os._exit(1)
    solver = _warm_solver(request.solver_name)
    rng = np.random.default_rng(request.seed)
    started = time.perf_counter()
    cpu_started = time.process_time()
    with warm_context(request.worker_ids):
        result = solver.solve(request.instance, rng)
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    assigned = {
        w: tuple(result.assignment.tasks_of(w)) for w in request.worker_ids
    }
    return EngineOutcome(
        assigned, float(result.objective), elapsed, os.getpid(),
        solve_cpu_seconds=cpu_elapsed,
    )


def _solve_shm_request(request: ShmSolveRequest) -> EngineOutcome:
    """Rebuild the instance from shared-memory rows and solve it.

    The candidate matrix is a fancy-index into this process's decoded copy
    of the segment; tasks get synthetic positional ids and a per-width
    synthetic vocabulary (solvers consume only matrices and weights — ids
    are output labels, translated back on the loop).  Both distance
    matrices are recomputed from the boolean rows exactly as the pickled
    path's workers do, so the solve is bit-identical to shipping the
    instance.
    """
    if request.crash:
        os._exit(1)
    dense = shm.attach_dense(request.segment)
    candidate_matrix = dense[request.row_indices]
    vocabulary = _synthetic_vocabulary(request.segment.n_bits)
    tasks = TaskPool.from_trusted_matrix(
        [str(i) for i in range(len(request.row_indices))],
        candidate_matrix,
        vocabulary,
    )
    workers = WorkerPool(
        (
            Worker(wid, vector, MotivationWeights(float(alpha), float(beta)))
            for wid, vector, alpha, beta in zip(
                request.worker_ids,
                request.worker_matrix,
                request.alphas,
                request.betas,
            )
        ),
        vocabulary,
    )
    instance = HTAInstance(tasks, workers, request.x_max)
    solver = _warm_solver(request.solver_name)
    rng = np.random.default_rng(request.seed)
    started = time.perf_counter()
    cpu_started = time.process_time()
    with warm_context(request.worker_ids):
        result = solver.solve(instance, rng)
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    assigned = {
        w: tuple(result.assignment.tasks_of(w)) for w in request.worker_ids
    }
    return EngineOutcome(
        assigned, float(result.objective), elapsed, os.getpid(),
        solve_cpu_seconds=cpu_elapsed,
    )


class SolveEngine:
    """Ships scheduler batches to a warm process pool and commits the results.

    Args:
        service: The assignment service owning pool, workers, and displays.
        registry: Metrics sink; the engine owns the ``serve_engine_*``
            family (worker/queue/in-flight gauges, solve counter + errors,
            pool rebuilds, in-worker solve-seconds histogram), updated
            through one :class:`SpanMetrics` seam.
        n_workers: Solver processes to keep warm (the ``--solver-workers``
            flag; the daemon only builds an engine when it is positive).
        solver_names: Solver tiers to pre-construct in every worker.
        shm_store: Optional :class:`~repro.serve.shm.TaskMatrixStore`; when
            set, solves whose candidates are covered by the store ship as
            zero-copy index requests instead of pickled instances (the
            pickled path remains the automatic fallback).
    """

    def __init__(
        self,
        service: "AssignmentService",
        registry: MetricsRegistry,
        n_workers: int,
        solver_names: tuple[str, ...] = (),
        shm_store: "TaskMatrixStore | None" = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._service = service
        self.n_workers = n_workers
        self._solver_names = tuple(solver_names)
        self._shm = shm_store
        #: Optional :class:`repro.serve.replay.FlightRecorder`; when set, the
        #: engine journals lease/commit/abandon in event-loop order — the
        #: interleaving concurrency would otherwise erase.
        self.recorder = None
        self._executor = self._new_executor()
        self._slots = asyncio.Semaphore(n_workers)
        self._closed = False
        registry.gauge(
            "serve_engine_workers", "Solver worker processes in the pool"
        ).set(n_workers)
        self._queue_depth = registry.gauge(
            "serve_engine_queue_depth",
            "Solve batches waiting for a free worker process",
        )
        self._in_flight = registry.gauge(
            "serve_engine_in_flight",
            "Solve batches currently executing in worker processes",
        )
        self._rebuilds = registry.counter(
            "serve_engine_pool_rebuilds_total",
            "Process pools rebuilt after a worker died mid-solve",
        )
        self._span_metrics = SpanMetrics().route(
            "solve",
            seconds=registry.histogram(
                "serve_engine_solve_seconds",
                "Solver wall time per batch, measured inside the worker process",
            ),
            count=registry.counter(
                "serve_engine_solves_total", "Solve batches executed off-loop"
            ),
            errors=registry.counter(
                "serve_engine_solve_errors_total",
                "Off-loop solve batches that raised",
            ),
        ).route(
            "engine_loop",
            seconds=registry.histogram(
                "serve_engine_loop_seconds",
                "Event-loop occupancy per off-loop solve: prepare + request "
                "serialization + commit (the non-overlappable cost)",
            ),
        ).route(
            "pickle",
            seconds=registry.histogram(
                "serve_engine_pickle_seconds",
                "Request-serialization leg per batch: row lookup + segment "
                "pin + pickle.dumps under zero-copy shipping, full instance "
                "pickling under the fallback",
            ),
        ).route(
            "unpickle",
            seconds=registry.histogram(
                "serve_engine_unpickle_seconds",
                "Worker-side request deserialization per batch, measured "
                "inside the worker process",
            ),
        )
        self._payload_bytes = registry.histogram(
            "serve_engine_payload_bytes",
            "Pickled request size per batch shipped to the worker pool",
        )
        self._solve_cpu = registry.histogram(
            "serve_engine_solve_cpu_seconds",
            "Solver process-CPU time per batch: the solve leg minus any "
            "core timesharing delay (pre-warm parity signal)",
        )

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_warm_worker,
            initargs=(
                self._solver_names,
                self._shm.current_ref() if self._shm is not None else None,
            ),
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken executor with a fresh warm pool.

        The broken pool's shutdown is non-blocking (its processes are
        already dead); in-flight futures were failed by the executor
        itself.  Without this, one crashed worker would permanently wedge
        every future solve behind ``BrokenProcessPool``.
        """
        broken = self._executor
        self._executor = self._new_executor()
        self._rebuilds.inc()
        broken.shutdown(wait=False, cancel_futures=True)

    async def solve_batch(
        self,
        worker_ids,
        wall_time: float,
        solver_name: str | None = None,
        session_times: dict[str, float] | None = None,
        ctx: SolveContext | None = None,
        crash: bool = False,
    ) -> tuple[dict[str, TasksAssigned], float]:
        """Prepare on the loop, solve in a worker process, commit on the loop.

        Returns ``(events, solve_seconds)`` where ``solve_seconds`` is the
        solver wall time measured *inside* the worker — the degradation
        controller's budget signal — and ``0.0`` when there was nothing to
        solve.  On a worker-side failure the lease is released untouched,
        the pool is rebuilt if the failure killed it, and the exception
        propagates (the scheduler fails that batch's waiters).  Stage spans
        (pool_wait / prepare / pickle / unpickle / solve / commit) land in
        ``ctx``; ``crash`` ships an injected worker death with the request.
        """
        if self._closed:
            raise RuntimeError("solve engine is closed")
        ctx = ctx if ctx is not None else SolveContext()
        self._queue_depth.inc()
        try:
            with ctx.span("pool_wait"):
                await self._slots.acquire()
        finally:
            self._queue_depth.dec()
        shm_ref = None
        try:
            with ctx.span("prepare") as prepare_span:
                prepared = self._service.prepare_solve(worker_ids, solver_name)
            if prepared is None:
                return {}, 0.0
            if self.recorder is not None:
                self.recorder.record_lease(prepared, ctx.attrs.get("trace_ids"))
            with ctx.span("pickle") as pickle_span:
                rows = (
                    self._shm.rows_for(prepared.candidates)
                    if self._shm is not None
                    else None
                )
                if rows is not None:
                    # Zero-copy: the candidate matrix already lives in the
                    # shared segment; ship row indices plus the per-batch
                    # worker rows and pin the segment version until the
                    # outcome lands.
                    shm_ref = self._shm.acquire()
                    request = ShmSolveRequest(
                        worker_ids=tuple(prepared.worker_ids),
                        worker_matrix=prepared.instance.workers.matrix,
                        alphas=prepared.instance.alphas(),
                        betas=prepared.instance.betas(),
                        segment=shm_ref,
                        row_indices=rows,
                        x_max=prepared.instance.x_max,
                        solver_name=prepared.solver_name,
                        seed=prepared.seed,
                        trace_id=ctx.attrs.get("trace_id"),
                        crash=crash,
                    )
                else:
                    # Pickled fallback: ship bits, not floats — drop the
                    # primed (k, k) diversity matrix from the pickled copy;
                    # the worker recomputes it bit-identically from the
                    # boolean keyword matrix.
                    slim_instance = copy.copy(prepared.instance)
                    slim_instance.__dict__.pop("diversity", None)
                    request = EngineRequest(
                        worker_ids=tuple(prepared.worker_ids),
                        instance=slim_instance,
                        solver_name=prepared.solver_name,
                        seed=prepared.seed,
                        trace_id=ctx.attrs.get("trace_id"),
                        crash=crash,
                    )
                blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
            ctx.attrs.setdefault("tier", prepared.solver_name)
            ctx.attrs["payload_bytes"] = len(blob)
            ctx.attrs["shipping"] = "shm" if shm_ref is not None else "pickle"
            self._span_metrics.observe(pickle_span)
            self._payload_bytes.observe(len(blob))
            loop = asyncio.get_running_loop()
            self._in_flight.inc()
            dispatched = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    self._executor, _solve_blob, blob
                )
            except BaseException as exc:
                error_span = Span(
                    "solve",
                    start=dispatched,
                    duration=time.perf_counter() - dispatched,
                    attrs={"tier": prepared.solver_name},
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                ctx.spans.append(error_span)
                self._span_metrics.observe(error_span)
                self._service.abandon_solve(prepared)
                if self.recorder is not None:
                    self.recorder.record_abandon(prepared)
                if isinstance(exc, BrokenProcessPool) and not self._closed:
                    self._rebuild_pool()
                raise
            finally:
                self._in_flight.dec()
            # The worker measured unpickle and solve with its own clock;
            # durations are exact, starts are placed inside the dispatch
            # window (attrs say so).
            unpickle_span = ctx.add_span(
                "unpickle",
                outcome.unpickle_seconds,
                abs_start=dispatched,
                measured="worker",
                pid=outcome.pid,
            )
            self._span_metrics.observe(unpickle_span)
            solve_span = ctx.add_span(
                "solve",
                outcome.solve_seconds,
                abs_start=dispatched + outcome.unpickle_seconds,
                measured="worker",
                pid=outcome.pid,
                tier=prepared.solver_name,
            )
            self._span_metrics.observe(solve_span)
            self._solve_cpu.observe(outcome.solve_cpu_seconds)
            assigned = outcome.assigned
            if shm_ref is not None:
                # The worker solved against synthetic positional ids;
                # translate back to real task ids so commits, journals,
                # and replays are byte-identical to the pickled path.
                candidates = prepared.candidates
                assigned = {
                    w: tuple(candidates[int(s)].task_id for s in ids)
                    for w, ids in assigned.items()
                }
            with ctx.span("commit") as commit_span:
                events = self._service.commit_solve(
                    prepared, assigned, wall_time, session_times
                )
                if self.recorder is not None:
                    self.recorder.record_commit(prepared, wall_time, events)
            loop_busy = (
                prepare_span.duration + pickle_span.duration + commit_span.duration
            )
            self._span_metrics.observe(Span("engine_loop", 0.0, loop_busy))
            return events, outcome.solve_seconds
        finally:
            if shm_ref is not None:
                self._shm.release(shm_ref.version)
            self._slots.release()

    async def quiesce(self) -> None:
        """Wait until no solve occupies a worker slot (drain support).

        Acquiring every slot forces this coroutine behind all in-flight
        solves on the same semaphore the dispatch path uses, so when it
        returns the pool is momentarily empty; the slots are released
        immediately — quiesce observes idleness, it does not lock the
        engine down (the caller stops feeding it first).
        """
        for _ in range(self.n_workers):
            await self._slots.acquire()
        for _ in range(self.n_workers):
            self._slots.release()

    def describe(self) -> dict:
        """Healthz block: pool size and current load."""
        info = {
            "workers": self.n_workers,
            "queue_depth": int(self._queue_depth.value),
            "in_flight": int(self._in_flight.value),
            "solves": int(self._solves_value()),
            "pool_rebuilds": int(self._rebuilds.value),
            "shared_memory": self._shm is not None,
        }
        if self._shm is not None:
            info["shm_version"] = self._shm.version
            info["shm_rows"] = self._shm.n_rows
        return info

    def _solves_value(self) -> float:
        return self._span_metrics._routes["solve"]["count"].value

    async def close(self) -> None:
        """Shut the worker pool down without blocking the event loop."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self._executor.shutdown(wait=True, cancel_futures=True)
        )

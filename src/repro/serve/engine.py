"""Off-loop parallel solve engine.

The in-loop solve path runs synchronous numpy code on the event loop; every
batched HTA solve therefore stalls request handling for its full duration.
:class:`SolveEngine` moves the solve itself into a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **prepare** (event loop) — :meth:`AssignmentService.prepare_solve` leases
  a disjoint candidate set out of the pool and builds a picklable
  :class:`~repro.crowd.service.PreparedSolve`;
* **solve** (worker process) — :func:`_solve_request` runs the named solver
  on the shipped :class:`~repro.core.instance.HTAInstance` with a seeded
  RNG and returns the per-worker task ids plus its own wall time;
* **commit** (event loop) — :meth:`AssignmentService.commit_solve` restores
  the lease and installs the displays through the normal removal path.

Worker processes keep *warm* solver instances: the pool initializer
resolves every solver tier of the degradation ladder once per process, so a
tier switch under overload never pays construction cost mid-solve.  The
wall times measured inside the worker (unpickle and solve) travel back with
the outcome — the solve time is the degradation controller's solve-budget
signal, unchanged in meaning across the process boundary (queueing time is
deliberately excluded; the controller budgets the solver, not the pool) —
and both become trace spans in every member request's trace.

A worker process dying mid-solve (OOM killer, fault injection) breaks the
whole :class:`ProcessPoolExecutor`, not just the one future; the engine
catches that, rebuilds a fresh warm pool, and fails only the affected
batch, so one crashed solve never takes the daemon's solve capacity down
with it (``serve_engine_pool_rebuilds_total`` counts these).
"""

from __future__ import annotations

import asyncio
import copy
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..core.solvers import get_solver
from ..crowd.events import TasksAssigned
from .metrics import MetricsRegistry
from .tracing import SolveContext, Span, SpanMetrics

if TYPE_CHECKING:
    from ..core.instance import HTAInstance
    from ..crowd.service import AssignmentService

#: Per-process warm solver cache, filled by the pool initializer.
_WARM_SOLVERS: dict[str, object] = {}


def _warm_worker(solver_names: tuple[str, ...]) -> None:
    """Pool initializer: resolve every ladder tier once per worker process."""
    for name in solver_names:
        _WARM_SOLVERS[name] = get_solver(name)


@dataclass(frozen=True)
class EngineRequest:
    """The picklable slice of a prepared solve shipped to a worker process.

    ``trace_id`` is the first member trace's id (debug correlation only);
    ``crash`` is the fault-injection seam — a worker receiving it dies
    mid-solve exactly like an OOM-killed process would.
    """

    worker_ids: tuple[str, ...]
    instance: "HTAInstance"
    solver_name: str
    seed: int
    trace_id: str | None = None
    crash: bool = False


@dataclass(frozen=True)
class EngineOutcome:
    """What a worker process sends back: the assignment and its cost.

    ``solve_seconds`` and ``unpickle_seconds`` are wall times measured
    *inside* the worker — real stage durations for the request traces, not
    loop-side approximations.
    """

    assigned: dict[str, tuple[str, ...]]
    objective: float
    solve_seconds: float
    pid: int
    unpickle_seconds: float = 0.0


def _solve_blob(blob: bytes) -> EngineOutcome:
    """Unpickle an :class:`EngineRequest` shipped as bytes and solve it.

    The engine pickles the request itself on the event loop so the
    serialization cost is *measured* as loop occupancy instead of hiding in
    the executor's feeder thread; shipping pre-pickled bytes through the
    pool is then a cheap memcpy.
    """
    started = time.perf_counter()
    request = pickle.loads(blob)
    unpickle_seconds = time.perf_counter() - started
    outcome = _solve_request(request)
    return replace(outcome, unpickle_seconds=unpickle_seconds)


def _solve_request(request: EngineRequest) -> EngineOutcome:
    """Run one HTA solve in a pool worker (module-level: must pickle)."""
    if request.crash:
        # Injected worker death: skip every interpreter-level cleanup, like
        # a SIGKILL would.  The parent sees a BrokenProcessPool.
        os._exit(1)
    solver = _WARM_SOLVERS.get(request.solver_name)
    if solver is None:  # cold fallback, e.g. a tier added after pool start
        solver = _WARM_SOLVERS[request.solver_name] = get_solver(request.solver_name)
    rng = np.random.default_rng(request.seed)
    started = time.perf_counter()
    result = solver.solve(request.instance, rng)
    elapsed = time.perf_counter() - started
    assigned = {
        w: tuple(result.assignment.tasks_of(w)) for w in request.worker_ids
    }
    return EngineOutcome(assigned, float(result.objective), elapsed, os.getpid())


class SolveEngine:
    """Ships scheduler batches to a warm process pool and commits the results.

    Args:
        service: The assignment service owning pool, workers, and displays.
        registry: Metrics sink; the engine owns the ``serve_engine_*``
            family (worker/queue/in-flight gauges, solve counter + errors,
            pool rebuilds, in-worker solve-seconds histogram), updated
            through one :class:`SpanMetrics` seam.
        n_workers: Solver processes to keep warm (the ``--solver-workers``
            flag; the daemon only builds an engine when it is positive).
        solver_names: Solver tiers to pre-construct in every worker.
    """

    def __init__(
        self,
        service: "AssignmentService",
        registry: MetricsRegistry,
        n_workers: int,
        solver_names: tuple[str, ...] = (),
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._service = service
        self.n_workers = n_workers
        self._solver_names = tuple(solver_names)
        #: Optional :class:`repro.serve.replay.FlightRecorder`; when set, the
        #: engine journals lease/commit/abandon in event-loop order — the
        #: interleaving concurrency would otherwise erase.
        self.recorder = None
        self._executor = self._new_executor()
        self._slots = asyncio.Semaphore(n_workers)
        self._closed = False
        registry.gauge(
            "serve_engine_workers", "Solver worker processes in the pool"
        ).set(n_workers)
        self._queue_depth = registry.gauge(
            "serve_engine_queue_depth",
            "Solve batches waiting for a free worker process",
        )
        self._in_flight = registry.gauge(
            "serve_engine_in_flight",
            "Solve batches currently executing in worker processes",
        )
        self._rebuilds = registry.counter(
            "serve_engine_pool_rebuilds_total",
            "Process pools rebuilt after a worker died mid-solve",
        )
        self._span_metrics = SpanMetrics().route(
            "solve",
            seconds=registry.histogram(
                "serve_engine_solve_seconds",
                "Solver wall time per batch, measured inside the worker process",
            ),
            count=registry.counter(
                "serve_engine_solves_total", "Solve batches executed off-loop"
            ),
            errors=registry.counter(
                "serve_engine_solve_errors_total",
                "Off-loop solve batches that raised",
            ),
        ).route(
            "engine_loop",
            seconds=registry.histogram(
                "serve_engine_loop_seconds",
                "Event-loop occupancy per off-loop solve: prepare + request "
                "serialization + commit (the non-overlappable cost)",
            ),
        )

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_warm_worker,
            initargs=(self._solver_names,),
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken executor with a fresh warm pool.

        The broken pool's shutdown is non-blocking (its processes are
        already dead); in-flight futures were failed by the executor
        itself.  Without this, one crashed worker would permanently wedge
        every future solve behind ``BrokenProcessPool``.
        """
        broken = self._executor
        self._executor = self._new_executor()
        self._rebuilds.inc()
        broken.shutdown(wait=False, cancel_futures=True)

    async def solve_batch(
        self,
        worker_ids,
        wall_time: float,
        solver_name: str | None = None,
        session_times: dict[str, float] | None = None,
        ctx: SolveContext | None = None,
        crash: bool = False,
    ) -> tuple[dict[str, TasksAssigned], float]:
        """Prepare on the loop, solve in a worker process, commit on the loop.

        Returns ``(events, solve_seconds)`` where ``solve_seconds`` is the
        solver wall time measured *inside* the worker — the degradation
        controller's budget signal — and ``0.0`` when there was nothing to
        solve.  On a worker-side failure the lease is released untouched,
        the pool is rebuilt if the failure killed it, and the exception
        propagates (the scheduler fails that batch's waiters).  Stage spans
        (pool_wait / prepare / pickle / unpickle / solve / commit) land in
        ``ctx``; ``crash`` ships an injected worker death with the request.
        """
        if self._closed:
            raise RuntimeError("solve engine is closed")
        ctx = ctx if ctx is not None else SolveContext()
        self._queue_depth.inc()
        try:
            with ctx.span("pool_wait"):
                await self._slots.acquire()
        finally:
            self._queue_depth.dec()
        try:
            with ctx.span("prepare") as prepare_span:
                prepared = self._service.prepare_solve(worker_ids, solver_name)
            if prepared is None:
                return {}, 0.0
            if self.recorder is not None:
                self.recorder.record_lease(prepared, ctx.attrs.get("trace_ids"))
            with ctx.span("pickle") as pickle_span:
                # Ship bits, not floats: drop the primed (k, k) diversity
                # matrix from the pickled copy — the worker recomputes it
                # from the boolean keyword matrix with the packed kernel,
                # which is bit-identical (differential suite) and far
                # smaller on the wire.
                slim_instance = copy.copy(prepared.instance)
                slim_instance.__dict__.pop("diversity", None)
                request = EngineRequest(
                    worker_ids=tuple(prepared.worker_ids),
                    instance=slim_instance,
                    solver_name=prepared.solver_name,
                    seed=prepared.seed,
                    trace_id=ctx.attrs.get("trace_id"),
                    crash=crash,
                )
                blob = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
            ctx.attrs.setdefault("tier", prepared.solver_name)
            ctx.attrs["payload_bytes"] = len(blob)
            loop = asyncio.get_running_loop()
            self._in_flight.inc()
            dispatched = time.perf_counter()
            try:
                outcome = await loop.run_in_executor(
                    self._executor, _solve_blob, blob
                )
            except BaseException as exc:
                error_span = Span(
                    "solve",
                    start=dispatched,
                    duration=time.perf_counter() - dispatched,
                    attrs={"tier": prepared.solver_name},
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                ctx.spans.append(error_span)
                self._span_metrics.observe(error_span)
                self._service.abandon_solve(prepared)
                if self.recorder is not None:
                    self.recorder.record_abandon(prepared)
                if isinstance(exc, BrokenProcessPool) and not self._closed:
                    self._rebuild_pool()
                raise
            finally:
                self._in_flight.dec()
            # The worker measured unpickle and solve with its own clock;
            # durations are exact, starts are placed inside the dispatch
            # window (attrs say so).
            ctx.add_span(
                "unpickle",
                outcome.unpickle_seconds,
                abs_start=dispatched,
                measured="worker",
                pid=outcome.pid,
            )
            solve_span = ctx.add_span(
                "solve",
                outcome.solve_seconds,
                abs_start=dispatched + outcome.unpickle_seconds,
                measured="worker",
                pid=outcome.pid,
                tier=prepared.solver_name,
            )
            self._span_metrics.observe(solve_span)
            with ctx.span("commit") as commit_span:
                events = self._service.commit_solve(
                    prepared, outcome.assigned, wall_time, session_times
                )
                if self.recorder is not None:
                    self.recorder.record_commit(prepared, wall_time, events)
            loop_busy = (
                prepare_span.duration + pickle_span.duration + commit_span.duration
            )
            self._span_metrics.observe(Span("engine_loop", 0.0, loop_busy))
            return events, outcome.solve_seconds
        finally:
            self._slots.release()

    def describe(self) -> dict:
        """Healthz block: pool size and current load."""
        return {
            "workers": self.n_workers,
            "queue_depth": int(self._queue_depth.value),
            "in_flight": int(self._in_flight.value),
            "solves": int(self._solves_value()),
            "pool_rebuilds": int(self._rebuilds.value),
        }

    def _solves_value(self) -> float:
        return self._span_metrics._routes["solve"]["count"].value

    async def close(self) -> None:
        """Shut the worker pool down without blocking the event loop."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self._executor.shutdown(wait=True, cancel_futures=True)
        )

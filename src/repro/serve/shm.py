"""Shared-memory task-matrix store: zero-copy solve shipping.

The engine used to pickle a full :class:`~repro.core.instance.HTAInstance`
per solve — the candidate tasks' boolean keyword matrix re-serialized on
every tick even though the underlying pool barely changes between solves.
This module publishes the packed uint64 keyword matrix of the live pool
*once* into a named :mod:`multiprocessing.shared_memory` segment; worker
processes attach on first use, copy the words out, and from then on a solve
request ships only *row indices* into that segment plus the per-batch
worker data — the pickle/unpickle legs collapse to near zero.

Lifecycle rules (the part that makes this safe rather than fast):

* **Segments are immutable and versioned.**  Open-world arrivals
  (``POST /tasks``) append packed rows to the store's loop-side buffer and
  publish a *new* segment; the previous version stays alive until every
  in-flight solve that acquired it has released it, so a solve dispatched
  before an arrival keeps reading the exact bytes it was indexed against.
* **The loop side refcounts, the worker side copies.**
  :meth:`TaskMatrixStore.acquire` pins the current version per dispatched
  solve and :meth:`TaskMatrixStore.release` unpins it; a retired version is
  unlinked the moment its refcount drops to zero.  Workers copy the words
  into a process-local cache and close their handle immediately — no
  worker ever holds a mapping open, so pool rebuilds after a worker crash
  can never leak ``/dev/shm`` entries.
* **Close is idempotent and unlinks exactly once.**  The daemon calls
  :meth:`TaskMatrixStore.close` from ``stop()``; chaos tests assert no
  ``/dev/shm`` residue survives it.

Row bookkeeping is append-only: a task's row never moves and removed tasks
simply leave a stale row behind (harmless — requests index rows
explicitly).  :meth:`rows_for` returns ``None`` when any candidate is
unknown, which callers treat as "fall back to pickled shipping".

Python 3.11's :mod:`multiprocessing.resource_tracker` registers a segment
on *attach* as well as create (fixed by ``track=False`` only in 3.13), so
an attaching worker immediately unregisters to keep the parent's tracker
the sole owner; without this, worker exit would unlink segments the daemon
still serves.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from ..perf.bitpack import pack_rows, unpack_rows

if TYPE_CHECKING:
    from collections.abc import Iterable, Sequence

    from ..core.task import Task

#: Initial loop-side row capacity headroom over the startup pool.
_GROWTH = 1.25

#: Segment names created (and therefore tracker-registered) by THIS process.
#: :func:`attach_dense` skips its unregister for these — an in-process attach
#: (tests, replay variants) must not strip the owner's tracker entry.
_OWNED: set[str] = set()


class ShmSegmentRef:
    """The picklable coordinates of one published segment version.

    Everything a worker needs to attach and decode: the segment name, the
    row/word geometry, and the keyword count for unpacking.
    """

    __slots__ = ("name", "version", "n_rows", "n_words", "n_bits")

    def __init__(self, name: str, version: int, n_rows: int, n_words: int, n_bits: int):
        self.name = name
        self.version = version
        self.n_rows = n_rows
        self.n_words = n_words
        self.n_bits = n_bits

    def __getstate__(self):
        return (self.name, self.version, self.n_rows, self.n_words, self.n_bits)

    def __setstate__(self, state):
        self.name, self.version, self.n_rows, self.n_words, self.n_bits = state

    def __repr__(self) -> str:
        return (
            f"ShmSegmentRef({self.name!r} v{self.version}, "
            f"{self.n_rows}x{self.n_words} words, {self.n_bits} bits)"
        )


class TaskMatrixStore:
    """Loop-side owner of the versioned shared-memory task matrix.

    Args:
        tasks: The startup pool's tasks, in pool order (their rows).
        n_bits: Keyword-space width ``R``.
        token: Segment-name entropy; defaults to a random hex string so
            concurrent daemons on one host never collide.
    """

    def __init__(
        self,
        tasks: "Sequence[Task]",
        n_bits: int,
        token: str | None = None,
    ):
        self._n_bits = int(n_bits)
        self._n_words = (self._n_bits + 63) // 64
        self._token = token or secrets.token_hex(6)
        matrix = (
            np.stack([np.asarray(t.vector, dtype=bool) for t in tasks])
            if tasks
            else np.zeros((0, self._n_bits), dtype=bool)
        )
        capacity = max(int(len(tasks) * _GROWTH), 64)
        self._packed = np.zeros((capacity, self._n_words), dtype=np.uint64)
        if len(tasks):
            self._packed[: len(tasks)] = pack_rows(matrix)
        self._n_rows = len(tasks)
        self._row_of: dict[str, int] = {
            t.task_id: i for i, t in enumerate(tasks)
        }
        self._version = 0
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._refs: dict[int, ShmSegmentRef] = {}
        self._refcounts: dict[int, int] = {}
        self._closed = False
        self._publish()

    # -- publishing ---------------------------------------------------------

    def _segment_name(self, version: int) -> str:
        return f"repro_tasks_{self._token}_v{version}"

    def _publish(self) -> None:
        """Copy the current packed rows into a fresh named segment."""
        self._version += 1
        version = self._version
        n_rows = self._n_rows
        nbytes = max(n_rows * self._n_words * 8, 8)
        segment = shared_memory.SharedMemory(
            name=self._segment_name(version), create=True, size=nbytes
        )
        if n_rows:
            view = np.ndarray(
                (n_rows, self._n_words), dtype=np.uint64, buffer=segment.buf
            )
            view[:] = self._packed[:n_rows]
            del view  # release the buffer reference before any later unlink
        _OWNED.add(segment.name)
        self._segments[version] = segment
        self._refs[version] = ShmSegmentRef(
            segment.name, version, n_rows, self._n_words, self._n_bits
        )
        self._refcounts[version] = 0

    def _retire(self, version: int) -> None:
        segment = self._segments.pop(version, None)
        self._refs.pop(version, None)
        self._refcounts.pop(version, None)
        if segment is not None:
            _OWNED.discard(segment.name)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # already gone (external cleanup)
                pass

    # -- loop-side API ------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def current_ref(self) -> ShmSegmentRef:
        return self._refs[self._version]

    def live_segments(self) -> list[str]:
        """Names of every not-yet-unlinked segment (test/debug hook)."""
        return [s.name for s in self._segments.values()]

    def rows_for(self, tasks: "Iterable[Task]") -> "np.ndarray | None":
        """Row indices of ``tasks`` in the current segment, in order.

        ``None`` when any task is unknown to the store (the caller falls
        back to pickled shipping — correctness never depends on coverage).
        """
        rows = []
        row_of = self._row_of
        for task in tasks:
            row = row_of.get(task.task_id)
            if row is None:
                return None
            rows.append(row)
        return np.asarray(rows, dtype=np.int64)

    def acquire(self) -> ShmSegmentRef:
        """Pin the current version for one in-flight solve."""
        if self._closed:
            raise RuntimeError("task matrix store is closed")
        ref = self.current_ref()
        self._refcounts[ref.version] += 1
        return ref

    def release(self, version: int) -> None:
        """Unpin one solve; retires the segment if it is old and unused."""
        if version not in self._refcounts:
            return
        self._refcounts[version] -= 1
        if (
            not self._closed
            and version != self._version
            and self._refcounts[version] <= 0
        ):
            self._retire(version)

    def on_arrivals(self, tasks: "Sequence[Task]") -> None:
        """Pool-growth hook (``TaskPoolState`` arrival listener).

        Appends the new rows and publishes a bumped segment version; the
        previous version survives until its last in-flight solve releases.
        """
        if self._closed or not tasks:
            return
        needed = self._n_rows + len(tasks)
        if needed > self._packed.shape[0]:
            capacity = max(int(needed * _GROWTH), self._packed.shape[0] * 2)
            grown = np.zeros((capacity, self._n_words), dtype=np.uint64)
            grown[: self._n_rows] = self._packed[: self._n_rows]
            self._packed = grown
        matrix = np.stack([np.asarray(t.vector, dtype=bool) for t in tasks])
        self._packed[self._n_rows : needed] = pack_rows(matrix)
        for offset, task in enumerate(tasks):
            self._row_of[task.task_id] = self._n_rows + offset
        self._n_rows = needed
        previous = self._version
        self._publish()
        if self._refcounts.get(previous, 0) <= 0:
            self._retire(previous)

    def close(self) -> None:
        """Unlink every remaining segment exactly once (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for version in list(self._segments):
            self._retire(version)

    def __del__(self):  # last-resort cleanup; close() is the real API
        try:
            self.close()
        except Exception:
            pass


# -- worker side ------------------------------------------------------------

#: Process-local decoded matrices, keyed by segment name (names are unique
#: per version).  Bounded: old versions evict in insertion order.
_DENSE_CACHE: dict[str, np.ndarray] = {}
_DENSE_CACHE_MAX = 4


def attach_dense(ref: ShmSegmentRef) -> np.ndarray:
    """Attach, copy, decode, and cache one segment version's boolean matrix.

    The shared handle is closed before returning — the worker keeps only
    its private copy, so the daemon's unlink schedule never races a mapped
    buffer in this process.
    """
    dense = _DENSE_CACHE.get(ref.name)
    if dense is not None:
        return dense
    segment = shared_memory.SharedMemory(name=ref.name)
    try:
        # Python 3.11 registers attached segments with this process's
        # resource tracker (no track= until 3.13); unregister so worker
        # exit never unlinks a segment the daemon still owns.  Skip when
        # this process created the segment — its tracker entry is the
        # owner's legitimate safety net.
        if ref.name not in _OWNED:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        words = np.ndarray(
            (ref.n_rows, ref.n_words), dtype=np.uint64, buffer=segment.buf
        ).copy()
    finally:
        segment.close()
    dense = unpack_rows(words, ref.n_bits)
    while len(_DENSE_CACHE) >= _DENSE_CACHE_MAX:
        _DENSE_CACHE.pop(next(iter(_DENSE_CACHE)))
    _DENSE_CACHE[ref.name] = dense
    return dense


def prefetch(ref: "ShmSegmentRef | None") -> None:
    """Pool-initializer hook: decode the current segment before first use."""
    if ref is not None:
        try:
            attach_dense(ref)
        except FileNotFoundError:
            pass  # segment republished between spawn and init; lazy path wins


def reset_worker_cache() -> None:
    """Drop this process's decoded-segment cache (tests)."""
    _DENSE_CACHE.clear()


def shm_entries(prefix: str = "repro_tasks_") -> list[str]:
    """``/dev/shm`` entries matching our naming scheme (leak assertions)."""
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(prefix))

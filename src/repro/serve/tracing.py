"""End-to-end request tracing for the serving path.

`/metrics` answers *how much* — counters and latency histograms over the
whole daemon.  This module answers *where*: every sampled request gets a
trace ID minted at ingress, and each stage the request passes through —
queue wait on the solve scheduler, batch solve (in-loop) or
prepare/pickle/unpickle/solve/commit (engine mode) — records a typed
:class:`Span` with its real wall time, including phases measured inside the
solver worker *process* and shipped back with the result.

Three consumers sit on top of the span stream:

* a bounded in-memory ring, served by ``GET /trace/<trace_id>`` for
  debugging a single slow request;
* an optional JSONL trace file (``repro serve --trace-file``), one trace
  per line, aggregated by ``repro trace summarize`` into a per-stage
  latency breakdown;
* :class:`SpanMetrics` — the single seam through which span durations feed
  the Prometheus histograms (``serve_stage_*_seconds`` and the scheduler /
  engine metric families), so histograms can never drift from what the
  traces say.

Sampling is systematic, not random: a rate of ``1/k`` samples exactly every
k-th request, which keeps tests deterministic and the disabled path
(``sample_rate 0``) a single float comparison per request.
"""

from __future__ import annotations

import json
import math
import secrets
import threading
import time
from collections import deque
from collections.abc import Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import Counter, Histogram, MetricsRegistry


def _sanitize_stage(name: str) -> str:
    """A span name as a metric-name fragment ([a-zA-Z0-9_] only)."""
    return "".join(c if c.isalnum() else "_" for c in name)


@dataclass
class Span:
    """One timed stage of a request (or of a solve batch).

    ``start`` is seconds relative to the owning trace's start once the span
    has been adopted into a trace; spans still sitting in a
    :class:`SolveContext` carry the absolute ``time.perf_counter()`` start
    instead (``Trace.adopt`` converts).  Durations are always plain wall
    seconds.  Spans measured in another process (the in-worker solve) keep
    their exact duration but an approximated start — the attrs carry
    ``measured: "worker"`` so consumers know.
    """

    name: str
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.error is not None:
            out["error"] = self.error
        return out


class _OpenSpan:
    """Handle for an in-progress span; :meth:`end` seals it into the trace."""

    __slots__ = ("_trace", "_name", "_attrs", "_abs_start", "_done")

    def __init__(self, trace: "Trace", name: str, attrs: dict):
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._abs_start = time.perf_counter()
        self._done = False

    def end(
        self, status: str = "ok", error: str | None = None, **attrs
    ) -> Span | None:
        if self._done:
            return None
        self._done = True
        duration = time.perf_counter() - self._abs_start
        self._attrs.update(attrs)
        return self._trace.add_span(
            self._name,
            duration,
            abs_start=self._abs_start,
            status=status,
            error=error,
            **self._attrs,
        )


class _NullSpan:
    """The open-span handle of an unsampled trace: everything is a no-op."""

    __slots__ = ()

    def end(self, *args, **kwargs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Trace:
    """One request's span record, closed exactly once at response time."""

    def __init__(
        self,
        trace_id: str,
        name: str = "request",
        recorder: "TraceRecorder | None" = None,
        **attrs,
    ):
        self.trace_id = trace_id
        self.name = name
        self.attrs: dict = dict(attrs)
        self.started_unix = time.time()
        self.spans: list[Span] = []
        self.duration: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self._t0 = time.perf_counter()
        self._recorder = recorder

    @property
    def closed(self) -> bool:
        return self.duration is not None

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def begin(self, name: str, **attrs) -> "_OpenSpan | _NullSpan":
        """Open a span now; the caller seals it later with ``.end()``."""
        return _OpenSpan(self, name, attrs)

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a span around a code block (errors are recorded, then
        re-raised)."""
        handle = self.begin(name, **attrs)
        try:
            yield handle
        except Exception as exc:
            handle.end(status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        else:
            handle.end()

    def add_span(
        self,
        name: str,
        duration: float,
        abs_start: float | None = None,
        status: str = "ok",
        error: str | None = None,
        **attrs,
    ) -> Span | None:
        """Append an externally measured span; dropped (and counted as a
        *late span*) when the trace already closed — a deadline-missed
        request answers before its solve lands, and the straggler spans
        must not mutate a trace that was already written out."""
        if self.closed:
            if self._recorder is not None:
                self._recorder.note_late_span()
            return None
        start = 0.0 if abs_start is None else max(0.0, abs_start - self._t0)
        span = Span(name, start, duration, attrs, status, error)
        self.spans.append(span)
        return span

    def adopt(self, span: Span) -> Span | None:
        """Copy a :class:`SolveContext` span (absolute start) into this
        trace, rebasing its start onto the trace clock."""
        return self.add_span(
            span.name,
            span.duration,
            abs_start=span.start,
            status=span.status,
            error=span.error,
            **span.attrs,
        )

    def close(
        self, status: str = "ok", error: str | None = None, **attrs
    ) -> None:
        """Seal the root span; idempotent, and routes the finished trace to
        the recorder (ring, JSONL, span metrics)."""
        if self.closed:
            return
        self.duration = time.perf_counter() - self._t0
        self.status = status
        self.error = error
        self.attrs.update(attrs)
        if self._recorder is not None:
            self._recorder._finished(self)

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "name": self.name,
            "status": self.status,
            "closed": self.closed,
            "started_unix": round(self.started_unix, 6),
            "duration": round(self.duration, 6) if self.closed else None,
            "attrs": self.attrs,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class _NullTrace:
    """The unsampled trace: same surface as :class:`Trace`, all no-ops.

    Call sites thread a trace unconditionally (``trace.adopt(...)``, never
    ``if trace is not None``); with sampling off every operation is a cheap
    method call on this singleton.  It is falsy, so the rare site that
    *does* need to branch (e.g. response headers) can ``if trace:``.
    """

    trace_id = None
    name = "null"
    attrs: dict = {}
    spans: list = []
    duration = None
    status = "ok"
    closed = False

    def __bool__(self) -> bool:
        return False

    def set_attrs(self, **attrs) -> None:
        return None

    def begin(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    @contextmanager
    def span(self, name: str, **attrs):
        yield _NULL_SPAN

    def add_span(self, *args, **kwargs) -> None:
        return None

    def adopt(self, span: Span) -> None:
        return None

    def close(self, *args, **kwargs) -> None:
        return None

    def to_dict(self) -> dict:
        return {}


NULL_TRACE = _NullTrace()


class SolveContext:
    """Span collector for one solve batch, shared by all member requests.

    A batch serves many parked requests at once, so its stage spans are
    recorded once here (with absolute ``perf_counter`` starts) and adopted
    into every member trace when the batch lands.  ``attrs`` accumulates
    batch-level facts (tier, payload size) that the scheduler folds into
    its batch span.
    """

    def __init__(self):
        self.spans: list[Span] = []
        self.attrs: dict = {}

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a stage span around a code block; yields the span so the
        caller can read its duration afterwards (errors are recorded on the
        span, then re-raised)."""
        started = time.perf_counter()
        span = Span(name, started, 0.0, attrs)
        try:
            yield span
        except Exception as exc:
            span.duration = time.perf_counter() - started
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            self.spans.append(span)
            raise
        span.duration = time.perf_counter() - started
        self.spans.append(span)

    def add_span(
        self,
        name: str,
        duration: float,
        abs_start: float | None = None,
        status: str = "ok",
        error: str | None = None,
        **attrs,
    ) -> Span:
        """Append an externally measured stage (e.g. in-worker solve time)."""
        start = time.perf_counter() - duration if abs_start is None else abs_start
        span = Span(name, start, float(duration), attrs, status, error)
        self.spans.append(span)
        return span


class SpanMetrics:
    """The single seam from finished spans to metric updates.

    Every code path that times a stage reports through :meth:`observe`, so
    counter/histogram updates cannot drift from what the trace spans say —
    the scheduler's sync and async paths, the engine, and the recorder's
    per-stage histograms all share this one routing table.

    Routing semantics (unit-tested in ``tests/test_serve_tracing.py``):

    * an ``ok`` span feeds its route's ``seconds`` histogram, increments
      ``count``, and feeds each ``attr_histograms`` entry present in the
      span's attrs;
    * an error span increments only ``errors`` — failed work must not
      contaminate the latency distributions;
    * spans without a route are dropped, unless ``registry`` and
      ``auto_prefix`` are set, in which case a
      ``{auto_prefix}_{name}_seconds`` histogram is created lazily and the
      span's duration lands there (this is how ``serve_stage_*_seconds``
      appear in ``/metrics``).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        auto_prefix: str | None = None,
    ):
        if auto_prefix is not None and registry is None:
            raise ValueError("auto_prefix requires a registry")
        self._registry = registry
        self._auto_prefix = auto_prefix
        self._routes: dict[str, dict] = {}

    def route(
        self,
        name: str,
        seconds: Histogram | None = None,
        count: Counter | None = None,
        errors: Counter | None = None,
        attr_histograms: dict[str, Histogram] | None = None,
    ) -> "SpanMetrics":
        """Bind span ``name`` to its metrics; returns self for chaining."""
        self._routes[name] = {
            "seconds": seconds,
            "count": count,
            "errors": errors,
            "attr_histograms": dict(attr_histograms or {}),
        }
        return self

    def observe(self, span: Span) -> None:
        route = self._routes.get(span.name)
        if route is None:
            if self._auto_prefix is None:
                return
            metric = f"{self._auto_prefix}_{_sanitize_stage(span.name)}_seconds"
            route = {
                "seconds": self._registry.histogram(
                    metric, f"Wall seconds spent in the {span.name!r} stage"
                ),
                "count": None,
                "errors": None,
                "attr_histograms": {},
            }
            self._routes[span.name] = route
        if span.status != "ok":
            if route["errors"] is not None:
                route["errors"].inc()
            return
        if route["seconds"] is not None:
            route["seconds"].observe(span.duration)
        if route["count"] is not None:
            route["count"].inc()
        for attr, histogram in route["attr_histograms"].items():
            value = span.attrs.get(attr)
            if value is not None:
                histogram.observe(value)


class TraceRecorder:
    """Mints, samples, retains, and exports request traces.

    Args:
        registry: Metrics sink for the recorder's own accounting
            (``serve_traces_started_total`` / ``_closed_total``, the
            ``serve_traces_open`` gauge, and
            ``serve_trace_late_spans_total``).
        sample_rate: Fraction of requests traced, in ``[0, 1]``.  Sampling
            is systematic (an accumulator, not an RNG): rate ``0.5`` traces
            exactly every second request.  ``0`` disables tracing — every
            ``start`` returns :data:`NULL_TRACE` and costs one comparison.
        capacity: Finished traces retained in the in-memory ring for
            ``GET /trace/<id>``; older traces are evicted FIFO.
        path: Optional JSONL file; every finished trace is appended as one
            JSON line (the ``repro trace summarize`` input format).
        span_metrics: Optional :class:`SpanMetrics` fed every child span of
            every finished trace (plus the root, under the trace's name).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sample_rate: float = 0.0,
        capacity: int = 512,
        path: "str | Path | None" = None,
        span_metrics: SpanMetrics | None = None,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self._capacity = capacity
        self._span_metrics = span_metrics
        self._ring: deque[Trace] = deque()
        self._by_id: dict[str, Trace] = {}
        self._acc = 0.0
        self._minted = 0
        self._run_id = secrets.token_hex(3)
        self._lock = threading.Lock()
        self._file = open(path, "a", buffering=1) if path else None
        self._started = registry.counter(
            "serve_traces_started_total", "Requests sampled into a trace"
        )
        self._closed = registry.counter(
            "serve_traces_closed_total", "Traces whose root span was closed"
        )
        self._open_gauge = registry.gauge(
            "serve_traces_open", "Sampled traces not yet closed (leak indicator)"
        )
        self._late_spans = registry.counter(
            "serve_trace_late_spans_total",
            "Spans arriving after their trace closed (e.g. a solve landing "
            "past the request deadline)",
        )

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def start(self, name: str = "request", **attrs) -> "Trace | _NullTrace":
        """Mint a trace for one request, or :data:`NULL_TRACE` if unsampled."""
        if self.sample_rate <= 0.0:
            return NULL_TRACE
        self._acc += self.sample_rate
        if self._acc < 1.0:
            return NULL_TRACE
        self._acc -= 1.0
        self._minted += 1
        trace = Trace(
            f"{self._run_id}-{self._minted:06d}", name, recorder=self, **attrs
        )
        self._started.inc()
        self._open_gauge.inc()
        return trace

    def note_late_span(self) -> None:
        self._late_spans.inc()

    def _finished(self, trace: Trace) -> None:
        """Called by :meth:`Trace.close` exactly once per sampled trace."""
        self._closed.inc()
        self._open_gauge.dec()
        with self._lock:
            self._ring.append(trace)
            self._by_id[trace.trace_id] = trace
            while len(self._ring) > self._capacity:
                evicted = self._ring.popleft()
                self._by_id.pop(evicted.trace_id, None)
        if self._file is not None:
            self._file.write(
                json.dumps(trace.to_dict(), separators=(",", ":")) + "\n"
            )
        if self._span_metrics is not None:
            for span in trace.spans:
                self._span_metrics.observe(span)

    def get(self, trace_id: str) -> Trace | None:
        """The retained trace with this id, or ``None`` (never sampled,
        still open, or already evicted)."""
        with self._lock:
            return self._by_id.get(trace_id)

    def traces(self) -> list[Trace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def close(self) -> None:
        """Flush and release the JSONL file (daemon shutdown)."""
        if self._file is not None:
            self._file.close()
            self._file = None


# -- trace-file summarization (the ``repro trace summarize`` backend) ---------

#: Column headers of the per-stage breakdown table.
SUMMARY_HEADERS = (
    "stage", "count", "errors", "mean_ms", "p50_ms", "p95_ms", "max_ms",
    "total_s", "share_%",
)


@dataclass(frozen=True)
class TraceFileSummary:
    """Aggregate view of one JSONL trace file."""

    n_traces: int
    n_spans: int
    n_unclosed: int
    rows: list[list[object]]

    @property
    def clean(self) -> bool:
        """True when the file is non-empty and every root span closed."""
        return self.n_traces > 0 and self.n_unclosed == 0


def _quantile(data: Sequence[float], q: float) -> float:
    if not data:
        return 0.0
    index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
    return data[index]


def _stage_row(
    name: str, durations: list[float], errors: int, root_total: float
) -> list[object]:
    durations = sorted(durations)
    total = sum(durations)
    share = 100.0 * total / root_total if root_total > 0 else 0.0
    return [
        name,
        len(durations),
        errors,
        round(1e3 * total / len(durations), 3) if durations else 0.0,
        round(1e3 * _quantile(durations, 0.50), 3),
        round(1e3 * _quantile(durations, 0.95), 3),
        round(1e3 * durations[-1], 3) if durations else 0.0,
        round(total, 4),
        round(share, 1),
    ]


def summarize_trace_file(path: "str | Path") -> TraceFileSummary:
    """Aggregate a JSONL trace file into a per-stage latency breakdown.

    Returns one table row per stage name (sorted by total time spent,
    descending) plus a final row for the root spans themselves.  Unclosed
    roots are counted but excluded from the latency rows — a trace-leak
    check fails on ``n_unclosed > 0`` (or an empty file) via
    :attr:`TraceFileSummary.clean`.
    """
    stage_durations: dict[str, list[float]] = {}
    stage_errors: dict[str, int] = {}
    root_durations: list[float] = []
    root_errors = 0
    n_traces = 0
    n_spans = 0
    n_unclosed = 0
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        n_traces += 1
        if not record.get("closed") or record.get("duration") is None:
            n_unclosed += 1
            continue
        root_durations.append(float(record["duration"]))
        if record.get("status") != "ok":
            root_errors += 1
        for span in record.get("spans", ()):
            n_spans += 1
            name = span["name"]
            if span.get("status", "ok") != "ok":
                stage_errors[name] = stage_errors.get(name, 0) + 1
            stage_durations.setdefault(name, []).append(float(span["duration"]))
    root_total = sum(root_durations)
    rows = [
        _stage_row(name, durations, stage_errors.get(name, 0), root_total)
        for name, durations in stage_durations.items()
    ]
    rows.sort(key=lambda row: row[7], reverse=True)
    if root_durations:
        rows.append(
            _stage_row("(root)", root_durations, root_errors, root_total)
        )
    return TraceFileSummary(n_traces, n_spans, n_unclosed, rows)

"""The online assignment daemon.

Exposes the paper's Fig. 4 workflow as a JSON-over-HTTP API on top of
:class:`repro.crowd.AssignmentService`:

* ``POST /workers`` — worker arrival: register keywords, get a first display;
* ``POST /tasks`` — task arrival: a requester posts a batch of new tasks
  into the live pool (open-world ingestion; the batch is validated and
  admitted atomically, flows into the diversity cache by block append, and
  is journaled as a ``task_arrival`` event);
* ``POST /complete`` — task completion: record marginal-gain observations;
  when the completion makes the worker due for reassignment, the request
  parks on the solve scheduler and returns the freshly solved display;
* ``GET /display/{worker_id}`` — the worker's current display and pending set;
* ``DELETE /workers/{worker_id}`` — session over;
* ``GET /healthz`` — liveness plus pool/worker gauges;
* ``GET /metrics`` — Prometheus text exposition;
* ``GET /vocabulary`` — the keyword space clients register against.

Solves are micro-batched by :class:`repro.serve.scheduler.SolveScheduler`
and read their pairwise-diversity blocks from the
:class:`repro.serve.cache.IncrementalDiversityCache`.  The daemon also
enforces the paper's assignment constraints at the boundary: every display
is checked for within-display uniqueness (C1) and against the set of every
task ever displayed (C2 — "once assigned, a task is dropped from subsequent
iterations"); violations increment ``serve_disjointness_violations_total``,
which correct operation keeps at zero.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.bandit import build_adaptivity
from ..core.task import Task, TaskPool
from ..core.worker import Worker
from ..crowd.events import TasksAssigned
from ..crowd.service import AssignmentService, ServiceConfig, execute_prepared
from ..errors import SimulationError
from ..quality import QualityConfig, QualityController
from ..storage import SnapshotStore
from .replay import FlightRecorder, pool_fingerprint, state_fingerprint
from .cache import IncrementalDiversityCache
from .metrics import MetricsRegistry
from .protocol import (
    HttpError,
    Request,
    json_response,
    read_request,
    text_response,
)
from .resilience import (
    DegradationController,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ResilienceConfig,
    degradation_ladder,
    make_tier_controller,
)
from .tracing import SolveContext, SpanMetrics, TraceRecorder

#: Snapshot kind under which an unsharded daemon persists its state.
#: Sharded daemons namespace the kind with their shard id (see
#: :func:`snapshot_kind_for`) so N shards sharing one store path can never
#: silently overwrite each other's snapshots.
SNAPSHOT_KIND = "serve"

#: Layout version of the daemon's snapshot payload.  Bumped to 2 when the
#: quality layer's state (reputation posteriors, gold aliases, ballots)
#: joined the payload; bumped to 3 when open-world ingestion added the
#: service's admitted-task arrival log; bumped to 4 when sharded serving
#: stamped the writing shard's id into the payload (restore refuses a
#: snapshot written by a different shard).  Versions 2 and 3 auto-migrate;
#: older versions are refused by the store.
SNAPSHOT_SCHEMA_VERSION = 4


def _migrate_snapshot_v2(state: dict) -> dict:
    """v2 → v3: inject the empty arrival log the old layout implied."""
    service = state.get("service")
    if isinstance(service, dict):
        service.setdefault("admitted", [])
    return state


def _migrate_snapshot_v3(state: dict) -> dict:
    """v3 → v4: stamp the unsharded shard id the old layout implied."""
    state.setdefault("shard_id", None)
    return state


def _migrate_snapshot_v2_to_v4(state: dict) -> dict:
    """v2 → v4: the two single-step migrations, chained."""
    return _migrate_snapshot_v3(_migrate_snapshot_v2(state))


def snapshot_kind_for(shard_id: "int | None") -> str:
    """The snapshot kind one daemon writes under: shard-namespaced."""
    if shard_id is None:
        return SNAPSHOT_KIND
    return f"{SNAPSHOT_KIND}:shard-{shard_id}"

#: Completion responses remembered for duplicate delivery (per daemon).
COMPLETION_CACHE_CAP = 4096


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs: where to listen, how eagerly to batch solves, and how
    to behave under failure (deadlines, degradation, chaos, snapshots)."""

    host: str = "127.0.0.1"
    port: int = 8080
    strategy: str = "hta-gre"
    service: ServiceConfig = field(default_factory=ServiceConfig)
    max_batch_delay: float = 0.05
    max_batch_size: int = 64
    solver_workers: int = 0
    #: Ship solve candidates to pool workers as row indices into a shared
    #: :mod:`multiprocessing.shared_memory` task-matrix segment instead of
    #: pickling the instance (engine mode only; see
    #: :mod:`repro.serve.shm`).  Off forces the pickled path everywhere.
    shared_memory: bool = True
    seed: int | None = None
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    fault_plan: FaultPlan | None = None
    snapshot_path: str | None = None
    snapshot_every: int = 20
    restore: bool = False
    trace_file: str | None = None
    trace_sample_rate: float = 0.0
    trace_capacity: int = 512
    #: Record every state-mutating event to this JSONL flight journal
    #: (see :mod:`repro.serve.replay`); requires an explicit ``seed``.
    journal_path: str | None = None
    #: How the served corpus was generated, e.g. ``{"kind": "crowdflower",
    #: "n_tasks": 2000, "seed": 0}`` — stored in the journal header so
    #: ``repro replay`` can rebuild the pool without the original process.
    corpus_spec: dict | None = None
    #: Quality-control subsystem (gold injection, redundancy, reputation);
    #: ``None`` leaves the daemon byte-identical to a quality-free build.
    quality: QualityConfig | None = None
    #: This daemon's shard index when it serves one slice of a sharded
    #: deployment (see :mod:`repro.serve.shard`); ``None`` for the classic
    #: single-daemon topology.  Namespaces snapshots, stamps the journal
    #: header, and unlocks the ``/admin`` drain/handoff endpoints' guards.
    shard_id: int | None = None
    #: Motivation estimator: ``plain`` (the paper's averaging) or ``bayes``
    #: (Beta posterior; enables Thompson sampling).
    estimator: str = "plain"
    #: Bandit policy over solve-time weights: ``off`` (posterior/average
    #: mean, bit-identical to the seed behaviour), ``thompson``, or ``ucb``
    #: (see :mod:`repro.core.bandit`).
    bandit: str = "off"
    #: Tier selection: ``streak`` (the PR-2 breach/recovery controller) or
    #: ``bandit`` (contextual UCB over the ladder; see
    #: :class:`~repro.serve.resilience.BanditTierController`).
    tier_policy: str = "streak"


class AssignmentDaemon:
    """One serving process: service + cache + scheduler + HTTP front."""

    def __init__(self, pool: TaskPool, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.quality: QualityController | None = None
        serving_pool = pool
        if self.config.quality is not None:
            # The controller sees the full corpus; the service serves the
            # corpus minus the gold holdout (identical when gold is off).
            self.quality = QualityController(
                pool, self.config.quality, registry=self.registry
            )
            serving_pool = QualityController.serving_pool(
                pool, self.config.quality
            )
        estimator, weight_policy = build_adaptivity(
            {"estimator": self.config.estimator, "bandit": self.config.bandit},
            seed=self.config.seed,
        )
        self.service = AssignmentService(
            serving_pool,
            self.config.strategy,
            self.config.service,
            estimator=estimator,
            rng=self.config.seed,
            weight_policy=weight_policy,
        )
        if self.quality is not None:
            self.service.set_reputation_provider(self.quality.reputation.mean)
        self.cache = IncrementalDiversityCache(serving_pool).attach(self.service)
        self.scheduler = None  # created in start(), needs a running loop
        self.engine = None  # created in start() when solver_workers > 0
        self._shm_store = None  # created in start() alongside the engine
        self._vocabulary = pool.vocabulary
        self._task_index: dict[str, Task] = {t.task_id: t for t in serving_pool}
        self._displayed_ever: set[str] = set()
        self._server: asyncio.AbstractServer | None = None
        self._started_at = time.monotonic()
        self.degradation = make_tier_controller(
            self.config.tier_policy,
            degradation_ladder(self.config.strategy),
            self.config.resilience,
            self.registry,
        )
        self.service.set_solver_provider(self.degradation.solver)
        self.fault: FaultInjector | None = (
            FaultInjector(self.config.fault_plan, self.registry)
            if self.config.fault_plan is not None
            else None
        )
        self._snapshot_kind = snapshot_kind_for(self.config.shard_id)
        self._draining = False
        self._snapshots: SnapshotStore | None = (
            SnapshotStore(
                self.config.snapshot_path,
                schema_version=SNAPSHOT_SCHEMA_VERSION,
                migrations={
                    2: _migrate_snapshot_v2_to_v4,
                    3: _migrate_snapshot_v3,
                },
            )
            if self.config.snapshot_path
            else None
        )
        self._solves_since_snapshot = 0
        self.tracer = TraceRecorder(
            self.registry,
            sample_rate=self.config.trace_sample_rate,
            capacity=self.config.trace_capacity,
            path=self.config.trace_file,
            span_metrics=SpanMetrics(self.registry, auto_prefix="serve_stage"),
        )
        r = self.registry
        self._requests = r.counter("serve_requests_total", "HTTP requests handled")
        self._errors = r.counter("serve_errors_total", "HTTP error responses sent")
        self._registrations = r.counter(
            "serve_workers_registered_total", "Workers registered"
        )
        self._completions = r.counter(
            "serve_completions_total", "Task completions recorded"
        )
        self._tasks_admitted = r.counter(
            "serve_tasks_admitted_total", "Tasks admitted via POST /tasks"
        )
        self._arrival_batches = r.counter(
            "serve_task_arrival_batches_total",
            "POST /tasks batches admitted",
        )
        self._admissions_rejected = r.counter(
            "serve_task_admissions_rejected_total",
            "POST /tasks batches rejected (collision or validation)",
        )
        self._reassignments = r.counter(
            "serve_reassignments_total", "Displays installed by batched solves"
        )
        self._displayed = r.counter(
            "serve_tasks_displayed_total", "Tasks displayed (assigned + pads)"
        )
        self._violations = r.counter(
            "serve_disjointness_violations_total",
            "Displays violating C1/C2 disjointness (must stay 0)",
        )
        self._request_seconds = r.histogram(
            "serve_request_seconds", "End-to-end request latency in seconds"
        )
        self._deadline_exceeded = r.counter(
            "serve_deadline_exceeded_total",
            "Requests answered from the stale display after a deadline miss",
        )
        self._degraded_responses = r.counter(
            "serve_degraded_responses_total",
            "Requests answered from the stale display after a solve failure",
        )
        self._snapshots_taken = r.counter(
            "serve_snapshots_total", "State snapshots persisted"
        )
        self._restores = r.counter(
            "serve_restores_total", "State restores from a snapshot"
        )
        self._deduplicated = r.counter(
            "serve_deduplicated_completions_total",
            "Retried completions answered from the completion cache",
        )
        # Bandit metrics exist only when a weight policy is on, so the
        # default daemon's /metrics output is unchanged.
        self._bandit_draws = (
            r.gauge(
                "serve_bandit_weight_draws",
                "Total bandit weight-policy consultations so far",
            )
            if weight_policy is not None
            else None
        )
        # (worker_id, completion_key) -> the original /complete response.
        # Scoped per registration epoch: entries are purged when the worker
        # unregisters or registers afresh, so a later worker reusing the
        # same key never receives a stale cached event.
        self._completion_cache: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self._recorder: FlightRecorder | None = None
        if self.config.journal_path:
            if self.config.seed is None:
                raise ValueError(
                    "journal recording requires an explicit seed: a journal "
                    "without the RNG origin cannot replay deterministically"
                )
            self._recorder = FlightRecorder(
                self.config.journal_path,
                header={
                    "strategy": self.config.strategy,
                    "seed": self.config.seed,
                    "service": asdict(self.config.service),
                    "pool_sha": pool_fingerprint(pool),
                    "corpus": self.config.corpus_spec,
                    "shard_id": self.config.shard_id,
                    "quality": (
                        None
                        if self.config.quality is None
                        else self.config.quality.to_dict()
                    ),
                    "adaptivity": {
                        "estimator": self.config.estimator,
                        "bandit": self.config.bandit,
                        "tier_policy": self.config.tier_policy,
                    },
                    "recorded_with": {
                        "solver_workers": self.config.solver_workers,
                        "fault_plan": (
                            None
                            if self.config.fault_plan is None
                            else self.config.fault_plan.to_dict()
                        ),
                    },
                },
            )
        if self.config.restore:
            self.restore_latest()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        from .scheduler import SolveScheduler

        if self.config.solver_workers > 0:
            from .engine import SolveEngine

            if self.config.shared_memory:
                from .shm import TaskMatrixStore

                # Publish the live pool's packed keyword matrix once;
                # POST /tasks arrivals re-publish a bumped version through
                # the pool's arrival listener.  shortlist(None) reads every
                # remaining task without consuming the service RNG.
                self._shm_store = TaskMatrixStore(
                    self.service.pool_state.shortlist(None),
                    len(self._vocabulary),
                )
                self.service.pool_state.add_arrival_listener(
                    self._shm_store.on_arrivals
                )
            self.engine = SolveEngine(
                self.service,
                self.registry,
                self.config.solver_workers,
                solver_names=self.degradation.ladder,
                shm_store=self._shm_store,
            )
            self.engine.recorder = self._recorder
        # Engine mode: batches are coroutines, several may be in flight, and
        # the degradation controller is fed the in-worker solve time from
        # _solve_batch_async instead of the scheduler's end-to-end timing
        # (which would count queueing against the solve budget).  The cap is
        # sized to the worker pool but bounded by the physical cores:
        # in-flight solves beyond the cores just timeshare, which inflates
        # every solve's wall time for zero extra throughput.  On a small
        # host the scheduler's back-pressure batching keeps dispatch
        # responsive anyway — due workers coalesce while the slots are
        # busy and ship the moment one frees.
        self.scheduler = SolveScheduler(
            self._solve_batch_async if self.engine is not None else self._solve_batch,
            self.registry,
            max_batch_delay=self.config.max_batch_delay,
            max_batch_size=self.config.max_batch_size,
            solve_observer=(
                None if self.engine is not None else self.degradation.observe_solve
            ),
            max_concurrency=max(
                1,
                min(2 * self.config.solver_workers, os.cpu_count() or 1),
            ),
        )
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.scheduler is not None:
            await self.scheduler.stop()
            self.scheduler = None
        if self.engine is not None:
            await self.engine.close()
            self.engine = None
        if self._shm_store is not None:
            # After the engine drained: every acquired version has been
            # released, so close() unlinks all segments exactly once.
            self._shm_store.close()
            self._shm_store = None
        self.snapshot_now()
        if self._recorder is not None:
            # Final bit-identity anchor: a replay that matched every event
            # must also land on this exact state hash, RNG position included.
            self._recorder.record_end(
                state_fingerprint(self._state_payload())
            )
            self._recorder.close()
        self.tracer.close()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` CLI entry point)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    def _wall_time(self) -> float:
        return time.monotonic() - self._started_at

    # -- solve batching -----------------------------------------------------

    def _solve_batch(self, worker_ids, ctx: SolveContext) -> dict[str, TasksAssigned]:
        """One assignment iteration for a scheduler batch (in-loop mode).

        Runs the same prepare → solve → commit protocol as the off-loop
        engine, with the solver on a derived per-solve seed, so the two
        serving configurations consume the service RNG identically: a
        journal recorded under either replays bit-identically under both
        (``repro replay --differential`` proves it per run).
        """
        tier = self.degradation.strategy
        ctx.attrs["tier"] = tier
        if self.fault is not None:
            try:
                self.fault.on_solve()
            except InjectedFault:
                self.degradation.observe_solve_failure()
                raise
        with ctx.span("prepare"):
            prepared = self.service.prepare_solve(worker_ids, solver_name=tier)
        if prepared is None:
            return {}
        if self._recorder is not None:
            self._recorder.record_lease(prepared, ctx.attrs.get("trace_ids"))
        try:
            with ctx.span("solve", tier=tier):
                assigned = execute_prepared(prepared)
        except Exception:
            self.service.abandon_solve(prepared)
            if self._recorder is not None:
                self._recorder.record_abandon(prepared)
            self.degradation.observe_solve_failure()
            raise
        with ctx.span("commit"):
            wall_time = self._wall_time()
            events = self.service.commit_solve(prepared, assigned, wall_time)
            if self._recorder is not None:
                self._recorder.record_commit(prepared, wall_time, events)
            for event in events.values():
                self._register_display(event)
                self._reassignments.inc()
            self._quality_tick()
            self._adaptivity_tick()
            self._maybe_snapshot()
        return events

    async def _solve_batch_async(
        self, worker_ids, ctx: SolveContext
    ) -> dict[str, TasksAssigned]:
        """Engine-mode batch: hooks run here, the solve in a pool worker.

        Fault injection and the degradation controller stay in this process;
        only the HTA solve itself crosses the process boundary.  The solve
        budget is checked against the wall time the worker measured around
        its solver call, so the signal means the same thing it does in-loop.
        """
        ctx.attrs["tier"] = self.degradation.strategy
        crash = False
        if self.fault is not None:
            try:
                self.fault.on_solve()
            except InjectedFault:
                self.degradation.observe_solve_failure()
                raise
            crash = self.fault.crash_worker()
        try:
            events, solve_seconds = await self.engine.solve_batch(
                worker_ids,
                self._wall_time(),
                solver_name=self.degradation.strategy,
                ctx=ctx,
                crash=crash,
            )
        except Exception:
            self.degradation.observe_solve_failure()
            raise
        if solve_seconds > 0.0:
            self.degradation.observe_solve(solve_seconds)
        # The engine committed the displays; install the C2 ledger entries
        # and snapshot cadence here, where the daemon's state lives.
        with ctx.span("snapshot"):
            for event in events.values():
                self._register_display(event)
                self._reassignments.inc()
            self._quality_tick()
            self._adaptivity_tick()
            self._maybe_snapshot()
        return events

    def _register_display(self, event: TasksAssigned) -> None:
        """Server-side C1/C2 guard over every display ever installed."""
        shown = tuple(event.task_ids) + tuple(event.random_pad_ids)
        if len(set(shown)) != len(shown) or self._displayed_ever & set(shown):
            self._violations.inc()
        self._displayed_ever.update(shown)
        self._displayed.inc(len(shown))
        if self.quality is not None and self.quality.active:
            # Quality extras for this display: maybe one gold probe plus
            # replica aliases.  Recorded even when empty — on_display also
            # expires the worker's stale aliases, so replay must drive it
            # at every install, in this exact order.
            extras = self.quality.on_display(event.worker_id, event.iteration)
            alias_ids = [task.task_id for task in extras]
            self._displayed_ever.update(alias_ids)
            if alias_ids:
                self._displayed.inc(len(alias_ids))
            if self._recorder is not None:
                self._recorder.record_probe(
                    event.worker_id, event.iteration, alias_ids
                )

    def _quality_tick(self) -> None:
        """Fold pending reputation evidence after a committed solve batch."""
        if self.quality is None or not self.quality.active:
            return
        self.quality.on_tick()
        if self._recorder is not None:
            self._recorder.record_tick()

    def _adaptivity_tick(self) -> None:
        """Post-batch bandit bookkeeping: metrics and the quality reward feed."""
        if self._bandit_draws is not None:
            self._bandit_draws.set(self.service.weight_policy.draws)
        if (
            self.quality is not None
            and self.quality.active
            and hasattr(self.degradation, "observe_quality")
        ):
            # Adjudicated quality as tier-bandit reward: the mean posterior
            # accuracy over every tracked worker this tick.
            workers = self.quality.reputation.worker_ids()
            if workers:
                mean = sum(
                    self.quality.reputation.mean(w) for w in workers
                ) / len(workers)
                self.degradation.observe_quality(mean)

    # -- snapshot / restore --------------------------------------------------

    def _state_payload(self) -> dict:
        """The daemon's full mutable state: the unit snapshots persist and
        the ``end`` journal fingerprint covers (replay rebuilds the same
        payload, see :meth:`repro.serve.replay._ReplayState.end_payload`)."""
        payload = {
            "service": self.service.snapshot_state(),
            "displayed_ever": sorted(self._displayed_ever),
        }
        if self.quality is not None:
            payload["quality"] = self.quality.state_dict()
        return payload

    def snapshot_now(self) -> bool:
        """Persist the daemon's full mutable state; no-op without a store.

        Safe to call while engine solves are in flight: the service
        snapshots the *logically-restored* pool (leased candidates
        included), so a restore from a mid-solve snapshot loses nothing.
        """
        if self._snapshots is None:
            return False
        payload = self._state_payload()
        payload["shard_id"] = self.config.shard_id
        if self._recorder is not None:
            # Journal/snapshot rendezvous: a restored daemon's journal can be
            # stitched to its predecessor's at this seq.
            payload["journal_seq"] = self._recorder.seq
        snapshot_id = self._snapshots.save(self._snapshot_kind, payload)
        self._snapshots_taken.inc()
        if self._recorder is not None:
            self._recorder.record_snapshot(snapshot_id)
        return True

    def restore_latest(self) -> bool:
        """Resume from the most recent snapshot, if one exists.

        Restores the service (pool, workers, displays, estimator, RNG) and
        the daemon's C2 ledger, then re-syncs the diversity cache against the
        restored pool — tasks displayed by the previous process must be dead
        rows here too, or the cache would serve stale candidates.
        """
        if self._snapshots is None:
            return False
        record = self._snapshots.latest_record(self._snapshot_kind)
        if record is None:
            return False
        state = record.state
        if state.get("shard_id") != self.config.shard_id:
            raise SimulationError(
                f"snapshot was written by shard {state.get('shard_id')!r}, "
                f"this daemon is shard {self.config.shard_id!r}"
            )
        self.service.restore_state(state["service"], self._task_index)
        # Tasks admitted by the previous process never existed in the
        # startup corpus; the snapshot's arrival log rebuilt them — index
        # them and append their cache rows before the removal sync below
        # marks whichever of them were already displayed as dead.
        admitted = self.service.admitted_tasks()
        for task in admitted:
            self._task_index[task.task_id] = task
        if admitted:
            self.cache.on_added(admitted)
            if self.quality is not None:
                self.quality.on_admitted(admitted)
        self._displayed_ever = set(state["displayed_ever"])
        if self.quality is not None and "quality" in state:
            self.quality.load_state_dict(state["quality"])
        pool_state = self.service.pool_state
        self.cache.on_removed(
            [tid for tid in self._task_index if tid not in pool_state]
        )
        self._restores.inc()
        if self._recorder is not None:
            self._recorder.record_restore(state, record.snapshot_id)
        return True

    def _maybe_snapshot(self) -> None:
        if self._snapshots is None or self.config.snapshot_every <= 0:
            return
        self._solves_since_snapshot += 1
        if self._solves_since_snapshot >= self.config.snapshot_every:
            self._solves_since_snapshot = 0
            self.snapshot_now()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        json_response(
                            exc.status, {"error": exc.message}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                if self.fault is not None:
                    corrupted = self.fault.corrupt_body(request.body)
                    if corrupted is not None:
                        request.body = corrupted
                    if self.fault.drop_connection():
                        return
                response = await self._dispatch(request)
                if self.fault is not None and self.fault.drop_response():
                    # Lost-ack injection: the request *ran* (state mutated,
                    # completions recorded) but the client never hears back
                    # and will retry.  Retried mutations must be idempotent.
                    return
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> bytes:
        self._requests.inc()
        started = time.perf_counter()
        keep_alive = request.keep_alive
        trace = self.tracer.start(
            "request", method=request.method, path=request.path
        )
        # Sampled requests echo their trace id so clients (and the loadgen's
        # differential suite) can correlate a measured latency with a trace.
        headers = {"x-trace-id": trace.trace_id} if trace else None
        status = 200
        try:
            payload = await self._route(request, trace)
            response = (
                payload
                if isinstance(payload, bytes)
                else json_response(
                    200, payload, keep_alive=keep_alive, extra_headers=headers
                )
            )
        except HttpError as exc:
            self._errors.inc()
            status = exc.status
            response = json_response(
                exc.status,
                {"error": exc.message},
                keep_alive=keep_alive,
                extra_headers=headers,
            )
        except Exception as exc:  # don't let one request kill the daemon
            self._errors.inc()
            status = 500
            response = json_response(
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
                extra_headers=headers,
            )
        self._request_seconds.observe(time.perf_counter() - started)
        trace.close(
            status="ok" if status < 500 else "error", http_status=status
        )
        return response

    async def _route(self, request: Request, trace) -> object:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metrics" and method == "GET":
            return text_response(
                200, self.registry.render(), keep_alive=request.keep_alive
            )
        if path == "/vocabulary" and method == "GET":
            return {"keywords": list(self._vocabulary.keywords)}
        if path == "/quality" and method == "GET":
            if self.quality is None:
                return {"active": False}
            return self.quality.quality_payload()
        if path == "/workers" and method == "POST":
            return await self._post_workers(request, trace)
        if path == "/tasks" and method == "POST":
            return await self._post_tasks(request, trace)
        if path == "/complete" and method == "POST":
            return await self._post_complete(request, trace)
        if path == "/admin/drain" and method == "POST":
            return await self._admin_drain()
        if path == "/admin/handoff" and method == "POST":
            return self._admin_handoff(request)
        if path == "/admin/adopt" and method == "POST":
            return self._admin_adopt(request)
        if path.startswith("/display/") and method == "GET":
            return self._get_display(path.removeprefix("/display/"))
        if path.startswith("/trace/") and method == "GET":
            return self._get_trace(path.removeprefix("/trace/"))
        if path.startswith("/workers/") and method == "DELETE":
            return self._delete_worker(path.removeprefix("/workers/"))
        raise HttpError(404, f"no route for {method} {request.path}")

    # -- endpoints -----------------------------------------------------------

    def _healthz(self) -> dict:
        payload = {
            "status": "ok",
            "strategy": self.service.strategy,
            "active_strategy": self.degradation.strategy,
            "uptime_seconds": round(self._wall_time(), 3),
            "workers": len(self.service.active_workers()),
            "remaining_tasks": self.service.remaining_tasks(),
            "queued_solves": self.scheduler.pending if self.scheduler else 0,
            "cache": {
                "live_tasks": len(self.cache),
                "backing_rows": self.cache.backing_rows,
                "allocated_rows": self.cache.allocated_rows,
                "carves": self.cache.carves,
                "compactions": self.cache.compactions,
                "appends": self.cache.appends,
            },
            "admitted_tasks": len(self.service.admitted_tasks()),
            "resilience": self.degradation.describe(),
            "adaptivity": {
                "estimator": self.config.estimator,
                "bandit": (
                    {"policy": "off", "draws": 0}
                    if self.service.weight_policy is None
                    else self.service.weight_policy.describe()
                ),
                "tier_policy": self.config.tier_policy,
            },
        }
        if self.engine is not None:
            payload["engine"] = self.engine.describe()
        if self.fault is not None:
            payload["fault_injection"] = self.fault.describe()
        if self._snapshots is not None:
            payload["snapshots"] = {
                "path": self.config.snapshot_path,
                "retained": self._snapshots.count(self._snapshot_kind),
            }
        if self.config.shard_id is not None:
            payload["shard_id"] = self.config.shard_id
        payload["draining"] = self._draining
        return payload

    def _get_trace(self, trace_id: str) -> dict:
        trace = self.tracer.get(trace_id)
        if trace is None:
            raise HttpError(
                404, f"no retained trace {trace_id!r} (unsampled, open, or evicted)"
            )
        return trace.to_dict()

    async def _post_workers(self, request: Request, trace) -> dict:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise HttpError(400, "worker_id must be a non-empty string")
        if self._draining:
            raise HttpError(503, "shard is draining; register elsewhere")
        vector = self._decode_interest(body)
        if self.service.remaining_tasks() == 0:
            raise HttpError(503, "task pool exhausted")
        trace.set_attrs(worker_id=worker_id)
        existing = self.service.worker_of(worker_id)
        if existing is not None:
            if np.array_equal(existing.vector, vector):
                # Idempotent re-registration: a client whose original
                # response was lost retries with the same interests; hand
                # back the current display instead of failing the retry.
                display = self.service.display_of(worker_id)
                return {
                    "worker_id": worker_id,
                    "already_registered": True,
                    "display": self._current_display_payload(worker_id, display),
                }
            raise HttpError(
                409,
                f"worker {worker_id!r} already registered with different "
                f"interests",
            )
        try:
            with trace.span("register"):
                event = self.service.register_worker(
                    Worker(worker_id, vector), self._wall_time()
                )
        except SimulationError as exc:
            raise HttpError(409, str(exc)) from None
        self._forget_completions(worker_id)
        self._register_display(event)
        self._registrations.inc()
        if self._recorder is not None:
            self._recorder.record_register(
                worker_id,
                vector,
                self.degradation.strategy,
                event,
                trace.trace_id,
            )
        return {"worker_id": worker_id, "display": self._display_payload(worker_id, event)}

    def _decode_interest(self, body: dict) -> np.ndarray:
        keywords = body.get("keywords")
        vector = body.get("vector")
        if keywords is not None:
            if not isinstance(keywords, list) or not all(
                isinstance(k, str) for k in keywords
            ):
                raise HttpError(400, "keywords must be a list of strings")
            unknown = [k for k in keywords if k not in self._vocabulary]
            if unknown:
                raise HttpError(400, f"unknown keywords: {unknown[:5]}")
            return self._vocabulary.encode(keywords)
        if vector is not None:
            array = np.asarray(vector, dtype=bool)
            if array.shape != (len(self._vocabulary),):
                raise HttpError(
                    400,
                    f"vector must have length {len(self._vocabulary)}, "
                    f"got {array.shape}",
                )
            return array
        raise HttpError(400, "provide either 'keywords' or 'vector'")

    async def _post_tasks(self, request: Request, trace) -> dict:
        """Open-world ingestion: admit a batch of new tasks into the pool.

        The batch is all-or-nothing: any malformed entry (400) or id
        collision (409 — against the corpus, a previously displayed task,
        an earlier arrival, or a quality alias) rejects the whole batch
        with no state mutated.  On success the tasks join the live pool in
        batch order, the diversity cache grows by block append (it
        subscribes to the pool's arrival events), the quality layer indexes
        them for future ballots, and the arrival is journaled so replay
        can rebuild tasks the startup corpus never contained.
        """
        if self._draining:
            self._admissions_rejected.inc()
            raise HttpError(503, "shard is draining; post tasks elsewhere")
        try:
            tasks = self._decode_task_batch(request.json())
        except HttpError:
            self._admissions_rejected.inc()
            raise
        try:
            admitted = self.service.admit_tasks(tasks)
        except SimulationError as exc:
            self._admissions_rejected.inc()
            raise HttpError(409, str(exc)) from None
        for task in tasks:
            self._task_index[task.task_id] = task
        if self.quality is not None:
            self.quality.on_admitted(tasks)
        self._tasks_admitted.inc(len(tasks))
        self._arrival_batches.inc()
        trace.set_attrs(tasks_admitted=len(tasks))
        if self._recorder is not None:
            self._recorder.record_task_arrival(tasks, trace.trace_id)
        return {
            "admitted": admitted,
            "remaining_tasks": self.service.remaining_tasks(),
        }

    def _decode_task_batch(self, body) -> list[Task]:
        """Validate one ``POST /tasks`` body into :class:`Task` objects."""
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        entries = body.get("tasks")
        if not isinstance(entries, list) or not entries:
            raise HttpError(400, "tasks must be a non-empty list")
        tasks: list[Task] = []
        seen: set[str] = set()
        for entry in entries:
            if not isinstance(entry, dict):
                raise HttpError(400, "each task must be a JSON object")
            task_id = entry.get("task_id")
            if not isinstance(task_id, str) or not task_id:
                raise HttpError(400, "task_id must be a non-empty string")
            if task_id in seen:
                raise HttpError(400, f"duplicate task_id {task_id!r} in batch")
            seen.add(task_id)
            if (
                task_id in self._task_index
                or task_id in self._displayed_ever
                or (
                    self.quality is not None
                    and self.quality.is_quality_task(task_id)
                )
            ):
                raise HttpError(
                    409, f"task {task_id!r} already exists; batch rejected"
                )
            vector = self._decode_interest(entry)
            group = entry.get("group", "")
            title = entry.get("title", "")
            if not isinstance(group, str) or not isinstance(title, str):
                raise HttpError(400, "group and title must be strings")
            try:
                task = Task(
                    task_id=task_id,
                    vector=vector,
                    group=group,
                    title=title,
                    reward=float(entry.get("reward", 0.05)),
                    n_questions=int(entry.get("n_questions", 1)),
                )
            except (TypeError, ValueError) as exc:
                raise HttpError(400, str(exc)) from None
            tasks.append(task)
        return tasks

    async def _post_complete(self, request: Request, trace) -> dict:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        worker_id = body.get("worker_id")
        task_id = body.get("task_id")
        if not isinstance(worker_id, str) or not isinstance(task_id, str):
            raise HttpError(400, "worker_id and task_id must be strings")
        completion_key = body.get("completion_key")
        if completion_key is not None and not isinstance(completion_key, str):
            raise HttpError(400, "completion_key must be a string")
        answer = body.get("answer")
        if answer is not None:
            if not isinstance(answer, int) or isinstance(answer, bool):
                raise HttpError(400, "answer must be an integer label")
            if self.quality is None:
                answer = None  # no quality layer to consume it
        # Parse the deadline before mutating any state: a malformed header
        # must not leave a recorded completion behind its 400.
        deadline = self._request_deadline(request)
        if completion_key is not None:
            cached = self._completion_cache.get((worker_id, completion_key))
            if cached is not None:
                # Duplicate delivery (the original response was lost and the
                # client retried): the completion is already recorded, so
                # re-deliver the original response instead of 409ing.
                self._deduplicated.inc()
                trace.set_attrs(worker_id=worker_id, deduplicated=True)
                return {**cached, "deduplicated": True}
        if self.quality is not None and self.quality.is_quality_task(task_id):
            return self._complete_quality_task(
                worker_id, task_id, answer, completion_key, trace
            )
        try:
            self.service.observe_completion(worker_id, task_id)
        except SimulationError as exc:
            raise HttpError(409, str(exc)) from None
        self._completions.inc()
        if self._recorder is not None:
            self._recorder.record_complete(
                worker_id, task_id, trace.trace_id, completion_key, answer
            )
        if self.quality is not None:
            self.quality.on_answer(worker_id, task_id, answer)
        trace.set_attrs(worker_id=worker_id)
        reassigned = False
        deadline_exceeded = False
        if (
            not self._draining
            and self.service.needs_reassignment(worker_id)
            and self.scheduler is not None
        ):
            try:
                event = await asyncio.wait_for(
                    self.scheduler.submit(worker_id, trace=trace), timeout=deadline
                )
                reassigned = event is not None
            except asyncio.TimeoutError:
                # The solve is still running and will install the display
                # when it lands; this request answers *now* with the stale
                # one rather than blowing its budget.  The trace closes with
                # the response; the in-flight batch's spans arrive after
                # close and are counted as late spans, not recorded.
                deadline_exceeded = True
                self._deadline_exceeded.inc()
                self.degradation.observe_deadline_miss()
                trace.add_span(
                    "deadline",
                    deadline,
                    status="error",
                    error="request deadline expired before the solve landed",
                )
            except Exception:
                # The batched solve failed (injected or real).  The error is
                # already counted by the scheduler (and the trace carries the
                # batch's solve_error span); this worker keeps its current
                # display and the daemon stays within its contract.
                self._degraded_responses.inc()
        trace.set_attrs(
            reassigned=reassigned, deadline_exceeded=deadline_exceeded
        )
        try:
            display = self.service.display_of(worker_id)
        except SimulationError:
            # The worker unregistered while this request waited on the solve.
            payload = {
                "worker_id": worker_id,
                "completed": task_id,
                "reassigned": False,
                "deadline_exceeded": deadline_exceeded,
                "display": None,
            }
        else:
            payload = {
                "worker_id": worker_id,
                "completed": task_id,
                "reassigned": reassigned,
                "deadline_exceeded": deadline_exceeded,
                "display": self._current_display_payload(worker_id, display),
            }
        self._remember_completion(worker_id, completion_key, payload)
        return payload

    def _complete_quality_task(
        self,
        worker_id: str,
        task_id: str,
        answer: "int | None",
        completion_key: "str | None",
        trace,
    ) -> dict:
        """A completion for a gold/replica alias.

        The alias never existed in the assignment service, so the service is
        not consulted and no reassignment is triggered; the response is
        shaped exactly like an ordinary completion — a client must not be
        able to tell it just answered a gold question.
        """
        if task_id not in self.quality.overlay_ids(worker_id):
            raise HttpError(
                409,
                f"task {task_id!r} is not on worker {worker_id!r}'s display",
            )
        if self._recorder is not None:
            self._recorder.record_complete(
                worker_id, task_id, trace.trace_id, completion_key, answer
            )
        self.quality.on_answer(worker_id, task_id, answer)
        self._completions.inc()
        trace.set_attrs(worker_id=worker_id, quality_task=True)
        try:
            display = self.service.display_of(worker_id)
        except SimulationError:
            display_payload = None
        else:
            display_payload = self._current_display_payload(worker_id, display)
        payload = {
            "worker_id": worker_id,
            "completed": task_id,
            "reassigned": False,
            "deadline_exceeded": False,
            "display": display_payload,
        }
        self._remember_completion(worker_id, completion_key, payload)
        return payload

    def _remember_completion(
        self, worker_id: str, key: "str | None", payload: dict
    ) -> None:
        """Cache a completion response for duplicate delivery (bounded)."""
        if key is None:
            return
        self._completion_cache[(worker_id, key)] = payload
        while len(self._completion_cache) > COMPLETION_CACHE_CAP:
            self._completion_cache.popitem(last=False)

    def _forget_completions(self, worker_id: str) -> None:
        """Drop a worker's cached completions when its registration epoch
        ends: keys are client-chosen and a future registration under the
        same worker id may legitimately reuse them."""
        stale = [k for k in self._completion_cache if k[0] == worker_id]
        for k in stale:
            del self._completion_cache[k]

    def _request_deadline(self, request: Request) -> float:
        """Effective deadline: the server budget, tightened by the client.

        Clients propagate their remaining budget via ``x-deadline-ms``; the
        header can only shorten the server-side deadline, never extend it.
        """
        deadline = self.config.resilience.request_deadline
        header = request.headers.get("x-deadline-ms")
        if header is None:
            return deadline
        try:
            client_ms = float(header)
        except ValueError:
            raise HttpError(400, f"bad x-deadline-ms: {header!r}") from None
        if client_ms <= 0:
            raise HttpError(400, f"x-deadline-ms must be > 0, got {header!r}")
        return min(deadline, client_ms / 1000.0)

    def _get_display(self, worker_id: str) -> dict:
        try:
            display = self.service.display_of(worker_id)
        except SimulationError as exc:
            raise HttpError(404, str(exc)) from None
        return {
            "worker_id": worker_id,
            "display": self._current_display_payload(worker_id, display),
        }

    def _delete_worker(self, worker_id: str) -> dict:
        removed = self.service.unregister_worker(worker_id)
        if removed:
            self._forget_completions(worker_id)
            if self.quality is not None:
                self.quality.on_unregister(worker_id)
            if self._recorder is not None:
                self._recorder.record_unregister(worker_id)
        # Idempotent by construction: a retried DELETE finds the worker
        # already gone and still reports success.
        return {"worker_id": worker_id, "status": "unregistered"}

    # -- shard drain / handoff -------------------------------------------------

    async def _admin_drain(self) -> dict:
        """Stop leasing and wait out in-flight solves (``POST /admin/drain``).

        After this returns the shard accepts no new registrations or task
        batches, completions no longer trigger solves, every queued and
        in-flight batch has landed, and no lease is outstanding — the
        preconditions :meth:`_admin_handoff` requires.  Idempotent: a
        retried drain re-verifies the quiesced state and succeeds.
        """
        self._draining = True
        if self.scheduler is not None:
            await self.scheduler.quiesce()
        if self.engine is not None:
            await self.engine.quiesce()
        return {
            "status": "draining",
            "outstanding_leases": len(self.service.outstanding_leases()),
            "workers": len(self.service.active_workers()),
        }

    def _admin_handoff(self, request: Request) -> dict:
        """Export (and unregister) workers for adoption elsewhere.

        Requires a completed drain — exporting around an in-flight solve
        could strand a lease that still references the departing worker.
        Each blob carries the service-level session export, the full specs
        of every task on the worker's display (those tasks belong to *this*
        shard's corpus; the adopting shard has never seen them), and the
        worker's reputation posterior when the quality layer is active.
        Journaled per worker as ``handoff_out``, after which replay demands
        a bit-identical re-export at the same seq.
        """
        if not self._draining:
            raise HttpError(409, "drain the shard before handing off workers")
        worker_ids = self.service.active_workers()
        if request.body:
            body = request.json()
            if not isinstance(body, dict):
                raise HttpError(400, "expected a JSON object")
            requested = body.get("worker_ids")
            if requested is not None:
                if not isinstance(requested, list) or not all(
                    isinstance(w, str) for w in requested
                ):
                    raise HttpError(400, "worker_ids must be a list of strings")
                unknown = [
                    w for w in requested if self.service.worker_of(w) is None
                ]
                if unknown:
                    raise HttpError(
                        404, f"workers not registered here: {unknown[:5]}"
                    )
                worker_ids = requested
        workers: dict[str, dict] = {}
        for worker_id in worker_ids:
            exported = self.service.export_worker(worker_id)
            display = exported["display"]
            blob: dict = {
                "service": exported,
                "tasks": [
                    self._task_spec(tid)
                    for tid in (display["task_ids"] if display else [])
                ],
            }
            if self.quality is not None and self.quality.active:
                blob["reputation"] = self.quality.reputation.export_worker(
                    worker_id
                )
            if self._recorder is not None:
                self._recorder.record_handoff_out(worker_id, blob)
            self.service.unregister_worker(worker_id)
            self._forget_completions(worker_id)
            if self.quality is not None:
                self.quality.on_unregister(worker_id)
            workers[worker_id] = blob
        return {
            "workers": workers,
            "remaining_workers": len(self.service.active_workers()),
        }

    def _admin_adopt(self, request: Request) -> dict:
        """Adopt handoff blobs exported by another shard.

        Carried task specs join the local task index (for display
        rendering) and the display's ids join the C2 ledger; the service
        import consumes no local RNG, so the shard's own solve stream —
        and therefore its replay journal — is unaffected by who it hosts.
        """
        if self._draining:
            raise HttpError(503, "shard is draining")
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("workers"), dict
        ):
            raise HttpError(400, "expected {'workers': {worker_id: blob}}")
        for worker_id, blob in body["workers"].items():
            if not isinstance(blob, dict) or "service" not in blob:
                raise HttpError(400, f"bad handoff blob for {worker_id!r}")
        adopted: list[str] = []
        n_keywords = len(self._vocabulary)
        for worker_id, blob in body["workers"].items():
            for spec in blob.get("tasks", ()):
                if spec["task_id"] in self._task_index:
                    continue
                vector = np.zeros(n_keywords, dtype=bool)
                if spec["interest"]:
                    vector[np.asarray(spec["interest"], dtype=int)] = True
                self._task_index[spec["task_id"]] = Task(
                    task_id=spec["task_id"],
                    vector=vector,
                    group=spec.get("group", ""),
                    title=spec.get("title", ""),
                    reward=float(spec.get("reward", 0.05)),
                    n_questions=int(spec.get("n_questions", 1)),
                )
            try:
                self.service.import_worker(
                    worker_id, blob["service"], self._task_index
                )
            except SimulationError as exc:
                raise HttpError(409, str(exc)) from None
            display = blob["service"].get("display")
            if display is not None:
                self._displayed_ever.update(display["task_ids"])
            if self.quality is not None and "reputation" in blob:
                self.quality.reputation.import_worker(
                    worker_id, blob["reputation"]
                )
            self._forget_completions(worker_id)
            if self._recorder is not None:
                self._recorder.record_handoff_in(worker_id, blob)
            adopted.append(worker_id)
        return {
            "adopted": adopted,
            "workers": len(self.service.active_workers()),
        }

    def _task_spec(self, task_id: str) -> dict:
        """Full portable spec of one known task (handoff transport)."""
        task = self._task_index.get(task_id)
        if task is None:
            raise HttpError(500, f"no task {task_id!r} to hand off")
        return {
            "task_id": task.task_id,
            "interest": np.flatnonzero(task.vector).tolist(),
            "group": task.group,
            "title": task.title,
            "reward": task.reward,
            "n_questions": task.n_questions,
        }

    # -- payload shaping ------------------------------------------------------

    def _task_payload(self, task_id: str) -> dict:
        task = self._task_index.get(task_id)
        if task is None and self.quality is not None:
            # A gold/replica alias: render the underlying task under the
            # alias id — indistinguishable from a real task to the client.
            task = self.quality.task_for_display(task_id)
        if task is None:
            raise KeyError(f"no task {task_id!r} to render")
        return {
            "task_id": task_id,
            "title": task.title,
            "group": task.group,
            "keywords": list(task.keywords(self._vocabulary)),
        }

    def _overlay_ids(self, worker_id: str) -> list[str]:
        if self.quality is None:
            return []
        return self.quality.overlay_ids(worker_id)

    def _display_payload(self, worker_id: str, event: TasksAssigned) -> dict:
        shown = list(event.task_ids) + list(event.random_pad_ids)
        shown += self._overlay_ids(worker_id)
        return {
            "iteration": event.iteration,
            "alpha": event.alpha,
            "beta": event.beta,
            "assigned": list(event.task_ids),
            "random_pad": list(event.random_pad_ids),
            "tasks": [self._task_payload(tid) for tid in shown],
            "pending": shown,
        }

    def _current_display_payload(self, worker_id: str, display) -> dict:
        weights = self.service.weights_of(worker_id)
        pending = [display.task_ids[i] for i in display.pending()]
        overlay = self._overlay_ids(worker_id)
        return {
            "iteration": display.iteration,
            "alpha": weights.alpha,
            "beta": weights.beta,
            "tasks": [
                self._task_payload(tid)
                for tid in list(display.task_ids) + overlay
            ],
            "pending": pending + overlay,
        }


async def run_daemon(pool: TaskPool, config: ServeConfig | None = None) -> None:
    """Convenience runner: serve until cancelled / interrupted."""
    daemon = AssignmentDaemon(pool, config)
    await daemon.serve_forever()

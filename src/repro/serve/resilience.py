"""Fault injection and graceful degradation for the serving layer.

A production assignment daemon must keep honoring the paper's constraints
C1/C2 *under failure*: slow solves, dropped connections, malformed traffic,
worker churn mid-batch.  This module provides the two halves of that story:

* :class:`DegradationController` — overload detection and load shedding.
  The paper itself supplies the degradation ladder: HTA-APP is the 1/4
  approximation with an ``O(|T|^3)`` Hungarian step, HTA-GRE trades that for
  a 1/8 factor at ``O(|T|^2 log |T|)`` (Section IV-C), and below both sits a
  relevance-only greedy dealer that never touches the quadratic diversity
  term at all.  The controller watches per-solve wall time against a budget
  and walks the ladder down one tier per sustained breach streak, then back
  up after a streak of healthy solves.  The active tier is exported as the
  ``serve_degradation_tier`` gauge and in ``/healthz``.

* :class:`FaultInjector` — a deterministic chaos source driven by a
  :class:`FaultPlan` (seeded via :mod:`repro.rng`).  It can delay or fail
  solves, drop accepted connections before the response is written, and
  corrupt request bodies (which the daemon must then *reject*, not crash
  on).  The same plan format is usable from tests and from the
  ``repro serve --fault-plan plan.json`` CLI flag, so a chaos run in CI and
  a chaos run against a live daemon exercise identical code paths.

Everything here is dependency-free and deterministic: a ``FaultPlan`` with a
fixed seed produces the same fault sequence on every run, which is what lets
the chaos regression tests pin exact tier transitions.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.bandit import TierBandit
from ..core.solvers import get_solver
from ..rng import ensure_rng
from .metrics import MetricsRegistry

#: Human-readable names of the canonical degradation ladder positions.
DEFAULT_LADDER = ("hta-app", "hta-gre", "greedy-relevance")


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault injector."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for deadlines, overload detection, and recovery.

    Attributes:
        request_deadline: Seconds a request may park on the solve scheduler
            before the daemon answers with the worker's current display
            instead (the response carries ``deadline_exceeded: true``).
            Clients may tighten (never widen) this per-request with an
            ``x-deadline-ms`` header.
        solve_budget: Target wall-clock seconds for one batched solve; a
            solve over budget counts as a breach.
        breach_threshold: Consecutive breaches (over-budget solves or
            deadline misses) that trigger a one-tier degradation.
        recovery_threshold: Consecutive under-budget solves that lift the
            daemon back up one tier.
    """

    request_deadline: float = 2.0
    solve_budget: float = 0.5
    breach_threshold: int = 3
    recovery_threshold: int = 5

    def __post_init__(self) -> None:
        if self.request_deadline <= 0:
            raise ValueError(
                f"request_deadline must be > 0, got {self.request_deadline}"
            )
        if self.solve_budget <= 0:
            raise ValueError(f"solve_budget must be > 0, got {self.solve_budget}")
        if self.breach_threshold < 1:
            raise ValueError(
                f"breach_threshold must be >= 1, got {self.breach_threshold}"
            )
        if self.recovery_threshold < 1:
            raise ValueError(
                f"recovery_threshold must be >= 1, got {self.recovery_threshold}"
            )


def degradation_ladder(strategy: str) -> tuple[str, ...]:
    """The solver ladder for a daemon configured with ``strategy``.

    The configured strategy sits at tier 0; only *cheaper* rungs of the
    canonical ladder are appended below it, so a daemon already running
    ``hta-gre`` sheds straight to ``greedy-relevance`` and one running
    ``greedy-relevance`` has nowhere cheaper to go.
    """
    if strategy in DEFAULT_LADDER:
        return DEFAULT_LADDER[DEFAULT_LADDER.index(strategy):]
    return (strategy,) + DEFAULT_LADDER[1:]


class DegradationController:
    """Walks the solver ladder in response to solve-time pressure.

    Args:
        ladder: Solver names from most expensive/highest quality (tier 0)
            to cheapest (last tier); see :func:`degradation_ladder`.
        config: Budget and streak thresholds.
        registry: Metrics sink; the controller owns
            ``serve_degradation_tier`` (gauge), ``serve_degradations_total``
            and ``serve_recoveries_total`` (counters).
    """

    def __init__(
        self,
        ladder: Sequence[str],
        config: ResilienceConfig,
        registry: MetricsRegistry,
    ):
        if not ladder:
            raise ValueError("the degradation ladder cannot be empty")
        self._ladder = [(name, get_solver(name)) for name in ladder]
        self._config = config
        self._tier = 0
        self._breaches = 0
        self._healthy = 0
        self._tier_gauge = registry.gauge(
            "serve_degradation_tier",
            "Active degradation tier (0 = full quality)",
        )
        self._degradations = registry.counter(
            "serve_degradations_total", "Tier escalations under overload"
        )
        self._recoveries = registry.counter(
            "serve_recoveries_total", "Tier recoveries after sustained health"
        )

    @property
    def tier(self) -> int:
        return self._tier

    @property
    def strategy(self) -> str:
        """Name of the solver serving the active tier."""
        return self._ladder[self._tier][0]

    @property
    def ladder(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._ladder)

    def solver(self):
        """The :class:`~repro.core.solvers.base.Solver` of the active tier."""
        return self._ladder[self._tier][1]

    def observe_solve(self, seconds: float) -> None:
        """Feed one solve's wall time into the breach/health streaks."""
        if seconds > self._config.solve_budget:
            self._note_breach()
        else:
            self._note_healthy()

    def observe_deadline_miss(self) -> None:
        """A request blew its deadline waiting on a solve — overload signal."""
        self._note_breach()

    def observe_solve_failure(self) -> None:
        """A batched solve raised; treated like an over-budget solve."""
        self._note_breach()

    def _note_breach(self) -> None:
        self._healthy = 0
        self._breaches += 1
        if (
            self._breaches >= self._config.breach_threshold
            and self._tier < len(self._ladder) - 1
        ):
            self._tier += 1
            self._breaches = 0
            self._degradations.inc()
            self._tier_gauge.set(self._tier)

    def _note_healthy(self) -> None:
        self._breaches = 0
        self._healthy += 1
        if self._healthy >= self._config.recovery_threshold and self._tier > 0:
            self._tier -= 1
            self._healthy = 0
            self._recoveries.inc()
            self._tier_gauge.set(self._tier)

    def describe(self) -> dict:
        """JSON-friendly state for ``/healthz``."""
        return {
            "tier": self._tier,
            "strategy": self.strategy,
            "ladder": list(self.ladder),
            "consecutive_breaches": self._breaches,
            "consecutive_healthy": self._healthy,
            "solve_budget_seconds": self._config.solve_budget,
            "request_deadline_seconds": self._config.request_deadline,
        }


class BanditTierController:
    """Tier selection as a contextual bandit instead of fixed streaks.

    Same interface surface as :class:`DegradationController` (the daemon
    holds either one behind ``self.degradation``), but tier choice comes
    from a :class:`~repro.core.bandit.TierBandit`: arms are ladder rungs,
    the context is the current load regime (0 = last solve under budget,
    1 = pressured), and the reward for playing a tier folds

    * **cost** — ``min(1, solve_budget / seconds)``, so an under-budget
      solve scores 1.0 and an over-budget solve scores the fraction of
      budget it respected;
    * **solution quality** — a per-rung discount mirroring the ladder's
      approximation guarantees (1/4 → 1/8 → unbounded greedy), so the
      bandit only sheds quality when time savings pay for it;
    * **adjudicated quality** — an EWMA over the quality layer's observed
      accuracy (fed via :meth:`observe_quality` when quality control is
      on), which drags every arm's reward down when answer quality sags.

    Deadline misses and solve failures score 0 for the active arm.  The
    streak controller remains the default (``--tier-policy streak``) and
    its chaos trajectories are untouched; this controller is opt-in via
    ``--tier-policy bandit``.
    """

    #: Per-rung quality discounts for ladders deeper than the canonical 3.
    _QUALITY_STEP = 0.75

    def __init__(
        self,
        ladder: Sequence[str],
        config: ResilienceConfig,
        registry: MetricsRegistry,
        exploration: float = 0.3,
        quality_smoothing: float = 0.2,
    ):
        if not ladder:
            raise ValueError("the degradation ladder cannot be empty")
        self._ladder = [(name, get_solver(name)) for name in ladder]
        self._config = config
        self._bandit = TierBandit(n_arms=len(self._ladder), n_contexts=2,
                                  c=exploration)
        self._tier = 0
        self._context = 0
        self._quality_smoothing = quality_smoothing
        self._quality_ewma = 1.0
        # Tier 0 keeps full reward; each cheaper rung gives up a fixed share.
        self._tier_quality = [
            self._QUALITY_STEP ** i for i in range(len(self._ladder))
        ]
        self._tier_gauge = registry.gauge(
            "serve_degradation_tier",
            "Active degradation tier (0 = full quality)",
        )
        self._pulls = registry.labeled_counter(
            "serve_bandit_tier_pulls_total",
            "Solves played per ladder tier by the tier bandit",
            ("tier",),
        )
        self._rewards = registry.gauge(
            "serve_bandit_tier_reward",
            "Reward of the tier bandit's most recent observation",
        )
        self._switches = registry.counter(
            "serve_bandit_tier_switches_total",
            "Tier changes decided by the tier bandit",
        )

    @property
    def tier(self) -> int:
        return self._tier

    @property
    def strategy(self) -> str:
        """Name of the solver serving the active tier."""
        return self._ladder[self._tier][0]

    @property
    def ladder(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._ladder)

    def solver(self):
        """The :class:`~repro.core.solvers.base.Solver` of the active tier."""
        return self._ladder[self._tier][1]

    def observe_solve(self, seconds: float) -> None:
        """Feed one solve's wall time in as the active arm's reward."""
        cost = 1.0 if seconds <= 0 else min(
            1.0, self._config.solve_budget / seconds
        )
        reward = cost * self._tier_quality[self._tier] * self._quality_ewma
        self._observe(reward, pressured=seconds > self._config.solve_budget)

    def observe_deadline_miss(self) -> None:
        """A request blew its deadline waiting on a solve — reward 0."""
        self._observe(0.0, pressured=True)

    def observe_solve_failure(self) -> None:
        """A batched solve raised — reward 0."""
        self._observe(0.0, pressured=True)

    def observe_quality(self, score: float) -> None:
        """Fold an adjudicated-quality signal (mean accuracy in [0, 1])."""
        score = min(1.0, max(0.0, float(score)))
        s = self._quality_smoothing
        self._quality_ewma = (1.0 - s) * self._quality_ewma + s * score

    def _observe(self, reward: float, pressured: bool) -> None:
        self._pulls.labels(tier=str(self._tier)).inc()
        self._rewards.set(reward)
        self._bandit.update(self._context, self._tier, reward)
        self._context = 1 if pressured else 0
        chosen = self._bandit.select(self._context)
        if chosen != self._tier:
            self._switches.inc()
            self._tier = chosen
            self._tier_gauge.set(self._tier)

    def describe(self) -> dict:
        """JSON-friendly state for ``/healthz``."""
        return {
            "tier": self._tier,
            "strategy": self.strategy,
            "ladder": list(self.ladder),
            "policy": "bandit",
            "context": self._context,
            "quality_ewma": self._quality_ewma,
            "pulls": {
                "calm": self._bandit.counts(0),
                "pressured": self._bandit.counts(1),
            },
            "reward_means": {
                "calm": self._bandit.means(0),
                "pressured": self._bandit.means(1),
            },
            "solve_budget_seconds": self._config.solve_budget,
            "request_deadline_seconds": self._config.request_deadline,
        }


def make_tier_controller(
    policy: str,
    ladder: Sequence[str],
    config: ResilienceConfig,
    registry: MetricsRegistry,
):
    """Build the tier controller named by ``--tier-policy``.

    ``streak`` is the default fixed policy (exact PR-2 behaviour, chaos
    trajectories pinned by tests); ``bandit`` opts into
    :class:`BanditTierController`.
    """
    if policy == "streak":
        return DegradationController(ladder, config, registry)
    if policy == "bandit":
        return BanditTierController(ladder, config, registry)
    raise ValueError(
        f"unknown tier policy {policy!r}; expected 'streak' or 'bandit'"
    )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule.

    All probabilities are per-event Bernoulli draws from one seeded stream,
    so a plan is fully reproducible given its seed and the request sequence.

    Attributes:
        seed: Seed of the injector's random stream.
        solve_delay_p: Probability a solve is delayed by ``solve_delay_s``.
        solve_delay_s: Injected solve delay in seconds (blocks the loop, as
            a genuinely slow synchronous solve would).
        max_solve_delays: Cap on injected delays (``None`` = unlimited);
            capping lets chaos tests exercise recovery after a burst.
        solve_fail_p: Probability a solve raises :class:`InjectedFault`.
        drop_connection_p: Probability a parsed request's connection is
            closed without a response, *before* the request is dispatched
            (the request never happened server-side; retrying is safe).
        drop_response_p: Probability the connection is closed *after* the
            request was dispatched but before its response is written — the
            classic lost-ack failure.  The client cannot distinguish this
            from ``drop_connection_p`` and retries; the daemon must make
            retried mutations idempotent (completion keys) or the retry
            surfaces as a 409.
        corrupt_body_p: Probability a non-empty request body is corrupted
            before dispatch (the daemon must reject it with a 400).
        worker_crash_p: Probability a solve shipped to the process-pool
            engine carries a crash order — the worker process dies mid-solve
            with ``os._exit``, breaking the pool exactly like an OOM kill.
            Only meaningful with ``--solver-workers > 0``.
        max_worker_crashes: Cap on injected worker crashes (``None`` =
            unlimited); capping lets tests assert recovery after the pool
            rebuild.
    """

    seed: int = 0
    solve_delay_p: float = 0.0
    solve_delay_s: float = 0.0
    max_solve_delays: int | None = None
    solve_fail_p: float = 0.0
    drop_connection_p: float = 0.0
    drop_response_p: float = 0.0
    corrupt_body_p: float = 0.0
    worker_crash_p: float = 0.0
    max_worker_crashes: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "solve_delay_p", "solve_fail_p", "drop_connection_p",
            "drop_response_p", "corrupt_body_p", "worker_crash_p",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.solve_delay_s < 0:
            raise ValueError(f"solve_delay_s must be >= 0, got {self.solve_delay_s}")
        if self.max_solve_delays is not None and self.max_solve_delays < 0:
            raise ValueError(
                f"max_solve_delays must be >= 0, got {self.max_solve_delays}"
            )
        if self.max_worker_crashes is not None and self.max_worker_crashes < 0:
            raise ValueError(
                f"max_worker_crashes must be >= 0, got {self.max_worker_crashes}"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        return cls(**payload)

    @classmethod
    def from_file(cls, path: "str | Path") -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, dict):
            raise ValueError("a fault plan file must hold a JSON object")
        return cls.from_dict(payload)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the daemon's seams.

    One injector instance owns one seeded stream; each hook draws from it in
    call order, so the fault sequence is a pure function of (plan, traffic).
    """

    def __init__(self, plan: FaultPlan, registry: MetricsRegistry):
        self.plan = plan
        self._rng = ensure_rng(plan.seed)
        self._delays_injected = 0
        self._crashes_injected = 0
        self._worker_crashes = registry.counter(
            "serve_fault_worker_crashes_total", "Injected worker-process crashes"
        )
        self._solve_delays = registry.counter(
            "serve_fault_solve_delays_total", "Injected solve delays"
        )
        self._solve_failures = registry.counter(
            "serve_fault_solve_failures_total", "Injected solve failures"
        )
        self._dropped = registry.counter(
            "serve_fault_dropped_connections_total", "Injected connection drops"
        )
        self._dropped_responses = registry.counter(
            "serve_fault_dropped_responses_total",
            "Responses dropped after dispatch (lost-ack injection)",
        )
        self._corrupted = registry.counter(
            "serve_fault_corrupted_bodies_total", "Injected body corruptions"
        )

    def _draw(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return bool(self._rng.random() < probability)

    def on_solve(self) -> None:
        """Called right before a batched solve; may sleep or raise."""
        if self._draw(self.plan.solve_fail_p):
            self._solve_failures.inc()
            raise InjectedFault("injected solve failure")
        if self._draw(self.plan.solve_delay_p):
            limit = self.plan.max_solve_delays
            if limit is None or self._delays_injected < limit:
                self._delays_injected += 1
                self._solve_delays.inc()
                if self.plan.solve_delay_s > 0:
                    time.sleep(self.plan.solve_delay_s)

    def crash_worker(self) -> bool:
        """Whether the next engine solve should kill its worker process."""
        if self._draw(self.plan.worker_crash_p):
            limit = self.plan.max_worker_crashes
            if limit is None or self._crashes_injected < limit:
                self._crashes_injected += 1
                self._worker_crashes.inc()
                return True
        return False

    def drop_connection(self) -> bool:
        """Whether to close the current connection without responding."""
        if self._draw(self.plan.drop_connection_p):
            self._dropped.inc()
            return True
        return False

    def drop_response(self) -> bool:
        """Whether to drop the current *response* (the request already ran)."""
        if self._draw(self.plan.drop_response_p):
            self._dropped_responses.inc()
            return True
        return False

    def corrupt_body(self, body: bytes) -> bytes | None:
        """A corrupted copy of ``body``, or ``None`` to leave it alone.

        The corruption prepends a NUL byte, which can never start valid
        JSON, so the daemon's parse path must reject it with a 400.
        """
        if body and self._draw(self.plan.corrupt_body_p):
            self._corrupted.inc()
            return b"\x00" + body[1:]
        return None

    def describe(self) -> dict:
        """JSON-friendly state for ``/healthz``."""
        return {
            "plan": self.plan.to_dict(),
            "solve_delays_injected": self._delays_injected,
            "worker_crashes_injected": self._crashes_injected,
        }

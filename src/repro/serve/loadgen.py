"""Closed-loop load generator for the assignment daemon.

Simulates a crowd of workers against a running daemon over real sockets:
each worker registers with sampled interest keywords, then loops — pick a
pending task with the softmax choice model from :mod:`repro.crowd.behavior`
(novelty/relevance computed client-side from the keyword sets the daemon
returns), optionally think, ``POST /complete``, absorb the refreshed display
— until its completion budget or the pool runs out.

Besides driving load, the generator *verifies* the serving contract from the
client side: every task id shown across every display of every worker must
be globally unique (the paper drops displayed tasks from subsequent
iterations, so a duplicate means the daemon re-served a task).  Violations,
error responses and per-request latency quantiles are all in the
:class:`LoadgenResult`, and :func:`main` exits non-zero when the run was not
clean — which is what the CI smoke test keys off.

Run standalone against a live daemon::

    python -m repro.serve.loadgen --port 8080 --workers 50 --completions 10

or self-contained (spawns an in-process daemon on an ephemeral port)::

    python -m repro.serve.loadgen --spawn-server --workers 50
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from ..crowd.behavior import (
    BehaviorParams,
    Persona,
    WorkerBehavior,
    sample_latent_profiles,
    sample_personas,
)
from ..quality.gold import _digest, truth_label
from ..rng import ensure_rng
from .metrics import Histogram
from .protocol import HttpClient, install_uvloop


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    host: str = "127.0.0.1"
    port: int = 8080
    n_workers: int = 50
    completions_per_worker: int = 10
    n_keywords: int = 6
    think_time: float = 0.0  # mean seconds between completions (0 = slam)
    spawn_delay: float = 0.0  # mean stagger between worker arrivals
    seed: int = 0
    max_retries: int = 3  # per logical request, on transport errors and 5xx
    backoff_base: float = 0.05  # first retry delay; doubles per attempt
    backoff_cap: float = 1.0  # ceiling on any single backoff sleep
    request_deadline: float = 0.0  # seconds per logical request (0 = none);
    # the remaining budget is propagated to the daemon via x-deadline-ms
    #: When > 0, workers answer every completion with an integer label in
    #: ``[0, answer_labels)`` derived from the displayed keywords — the same
    #: content hash the daemon's quality layer uses, so honest answers score
    #: as correct on gold probes.  0 sends no answers (the seed protocol).
    answer_labels: int = 0
    #: Must match the daemon's ``GoldConfig.seed`` for truth labels to agree.
    quality_seed: int = 0
    #: Adversarial persona mix (fractions of ``n_workers``; the rest are
    #: honest).  See :func:`repro.crowd.behavior.sample_personas`.
    spammer_fraction: float = 0.0
    drifting_fraction: float = 0.0
    colluder_fraction: float = 0.0
    clique_size: int = 3
    drift_per_task: float = 0.03
    #: Open-world arrivals: while workers run, a driver coroutine POSTs new
    #: tasks to ``/tasks``.  ``None`` disables (closed-world, the seed
    #: behavior); ``"trickle"`` posts single tasks at a steady interval;
    #: ``"burst"`` posts batches whose members share a perturbed base
    #: keyword set (correlated similarity, the diversity cache's worst
    #: case); ``"spike"`` posts everything in one entry-rush batch.
    arrival_pattern: str | None = None
    arrival_tasks: int = 0  # total tasks the driver injects over the run
    arrival_batch: int = 5  # batch size for "burst" (others ignore it)
    arrival_interval: float = 0.05  # seconds between arrival posts

    def __post_init__(self) -> None:
        if self.arrival_pattern not in (None, "trickle", "burst", "spike"):
            raise ValueError(
                f"arrival_pattern must be one of trickle/burst/spike/None, "
                f"got {self.arrival_pattern!r}"
            )
        if self.arrival_pattern is not None and self.arrival_tasks < 1:
            raise ValueError(
                "arrival_tasks must be >= 1 when an arrival_pattern is set"
            )
        if self.arrival_tasks < 0:
            raise ValueError(
                f"arrival_tasks must be >= 0, got {self.arrival_tasks}"
            )
        if self.arrival_batch < 1:
            raise ValueError(
                f"arrival_batch must be >= 1, got {self.arrival_batch}"
            )
        if self.arrival_interval < 0:
            raise ValueError(
                f"arrival_interval must be >= 0, got {self.arrival_interval}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.answer_labels < 0:
            raise ValueError(
                f"answer_labels must be >= 0, got {self.answer_labels}"
            )
        if self.answer_labels == 1:
            raise ValueError("answer_labels needs at least 2 labels (or 0)")
        if (
            self.spammer_fraction or self.drifting_fraction
            or self.colluder_fraction
        ) and self.answer_labels == 0:
            raise ValueError(
                "adversarial personas need answer_labels > 0 to matter"
            )
        if self.completions_per_worker < 1:
            raise ValueError(
                f"completions_per_worker must be >= 1, "
                f"got {self.completions_per_worker}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.request_deadline < 0:
            raise ValueError(
                f"request_deadline must be >= 0, got {self.request_deadline}"
            )


@dataclass
class LoadgenResult:
    """What happened, plus the client-side contract checks."""

    workers_started: int = 0
    workers_finished: int = 0
    completions: int = 0
    displays_received: int = 0
    reassignments: int = 0
    http_errors: int = 0
    transport_errors: int = 0
    retries: int = 0
    deadline_exceeded_responses: int = 0
    #: Responses served from the daemon's idempotency caches — a retried
    #: completion answered with the original event, or a retried
    #: registration answered with the current display.  Nonzero only when
    #: responses were lost (chaos) and the retry was absorbed cleanly.
    deduplicated_responses: int = 0
    #: Open-world arrivals posted by the arrival driver (when configured).
    tasks_posted: int = 0
    arrival_batches: int = 0
    #: Arrival POSTs the daemon rejected (4xx/409) or that exhausted their
    #: transport retries — any of these makes the run unclean.
    arrival_failures: int = 0
    duplicate_display_violations: int = 0
    duration_seconds: float = 0.0
    requests: int = 0
    #: TCP connections the run opened, summed over every client (workers,
    #: arrival driver, probe).  With keep-alive working this stays near
    #: ``n_workers + 2``; anything close to ``requests`` means every request
    #: paid a fresh TCP handshake.
    connections_opened: int = 0
    #: Responses that carried an ``x-trace-id`` header (sampled requests).
    traced_requests: int = 0
    #: trace_id -> client-measured latency of that request's final attempt;
    #: the differential trace suite joins these against the daemon's JSONL
    #: trace file.  Not serialized (unbounded for long runs).
    trace_latencies: dict[str, float] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    #: Latency of ``/complete`` requests whose response carried a *fresh*
    #: assignment — the client-observed per-iteration solve latency.
    assign_latency: dict[str, float] = field(default_factory=dict)
    #: Latency of plain ``/complete`` requests (no reassignment): these never
    #: need a solve, so any stall they see is the event loop being blocked.
    plain_latency: dict[str, float] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    @property
    def clean(self) -> bool:
        """True when the run exposed no contract violations or errors."""
        return (
            self.duplicate_display_violations == 0
            and self.http_errors == 0
            and self.transport_errors == 0
            and self.arrival_failures == 0
            and self.completions > 0
        )

    def to_dict(self) -> dict:
        return {
            "workers_started": self.workers_started,
            "workers_finished": self.workers_finished,
            "completions": self.completions,
            "displays_received": self.displays_received,
            "reassignments": self.reassignments,
            "http_errors": self.http_errors,
            "transport_errors": self.transport_errors,
            "retries": self.retries,
            "deadline_exceeded_responses": self.deadline_exceeded_responses,
            "deduplicated_responses": self.deduplicated_responses,
            "tasks_posted": self.tasks_posted,
            "arrival_batches": self.arrival_batches,
            "arrival_failures": self.arrival_failures,
            "duplicate_display_violations": self.duplicate_display_violations,
            "duration_seconds": round(self.duration_seconds, 4),
            "requests": self.requests,
            "connections_opened": self.connections_opened,
            "traced_requests": self.traced_requests,
            "requests_per_second": round(self.requests_per_second, 2),
            "latency_seconds": {k: round(v, 6) for k, v in self.latency.items()},
            "assign_latency_seconds": {
                k: round(v, 6) for k, v in self.assign_latency.items()
            },
            "plain_latency_seconds": {
                k: round(v, 6) for k, v in self.plain_latency.items()
            },
            "clean": self.clean,
        }


def _keyword_jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard distance between two keyword sets (client-side novelty)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return 1.0 - len(a & b) / union


class _SharedState:
    """Cross-worker bookkeeping for the contract checks and latency stats."""

    def __init__(self):
        self.seen_task_ids: set[str] = set()
        self.result = LoadgenResult()
        self.latency = Histogram("loadgen_request_seconds")
        self.assign_latency = Histogram("loadgen_assign_seconds")
        self.plain_latency = Histogram("loadgen_plain_complete_seconds")

    def record_display(self, shown: list[str]) -> None:
        self.result.displays_received += 1
        for task_id in shown:
            if task_id in self.seen_task_ids:
                self.result.duplicate_display_violations += 1
            self.seen_task_ids.add(task_id)


class _SimulatedWorker:
    """One closed-loop worker session."""

    def __init__(
        self,
        worker_id: str,
        config: LoadgenConfig,
        vocabulary: list[str],
        shared: _SharedState,
        rng: np.random.Generator,
        persona: "Persona | None" = None,
    ):
        self.worker_id = worker_id
        self.config = config
        self.shared = shared
        self._rng = rng
        take = min(config.n_keywords, len(vocabulary))
        picks = rng.choice(len(vocabulary), size=take, replace=False)
        self.keywords = frozenset(vocabulary[int(i)] for i in picks)
        profile = sample_latent_profiles(1, rng=rng)[0]
        self.behavior = WorkerBehavior(profile, BehaviorParams(), rng, persona=persona)
        self._last_novelty = 1.0
        self._last_relevance = 0.0
        self.recent: list[frozenset[str]] = []
        self.client = HttpClient(config.host, config.port)
        # task_id -> keyword set, refreshed from every display payload
        self.task_keywords: dict[str, frozenset[str]] = {}
        self.pending: list[str] = []

    async def _request(self, method: str, path: str, payload=None):
        """One logical request: retries with exponential backoff and
        propagates the remaining deadline budget to the daemon.

        Transport errors (dropped connections) and 5xx responses are retried
        up to ``max_retries`` times; only a *final* failure counts against
        the run, so a daemon under chaos that recovers within the retry
        budget still yields a clean result.
        """
        config = self.config
        deadline = (
            time.perf_counter() + config.request_deadline
            if config.request_deadline > 0
            else None
        )
        attempt = 0
        while True:
            headers = None
            if deadline is not None:
                remaining_ms = (deadline - time.perf_counter()) * 1000.0
                headers = {"x-deadline-ms": f"{max(remaining_ms, 1.0):.0f}"}
            started = time.perf_counter()
            try:
                status, body = await self.client.request(
                    method, path, payload, headers=headers
                )
            except (OSError, asyncio.IncompleteReadError, EOFError):
                self.shared.latency.observe(time.perf_counter() - started)
                self.shared.result.requests += 1
                if attempt >= config.max_retries or self._out_of_budget(deadline):
                    self.shared.result.transport_errors += 1
                    raise
                attempt += 1
                self.shared.result.retries += 1
                await self._backoff(attempt, deadline)
                continue
            self.shared.latency.observe(time.perf_counter() - started)
            self.shared.result.requests += 1
            if (
                status >= 500
                and attempt < config.max_retries
                and not self._out_of_budget(deadline)
            ):
                attempt += 1
                self.shared.result.retries += 1
                await self._backoff(attempt, deadline)
                continue
            if status >= 400:
                self.shared.result.http_errors += 1
            if isinstance(body, dict) and body.get("deadline_exceeded"):
                self.shared.result.deadline_exceeded_responses += 1
            trace_id = self.client.last_headers.get("x-trace-id")
            if trace_id:
                self.shared.result.traced_requests += 1
                self.shared.result.trace_latencies[trace_id] = (
                    time.perf_counter() - started
                )
            return status, body

    @staticmethod
    def _out_of_budget(deadline: float | None) -> bool:
        return deadline is not None and time.perf_counter() >= deadline

    async def _backoff(self, attempt: int, deadline: float | None) -> None:
        """Jittered exponential backoff, clipped to the remaining budget."""
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (attempt - 1)),
        )
        delay *= 0.5 + self._rng.random()  # full jitter in [0.5x, 1.5x)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.perf_counter()))
        if delay > 0:
            await asyncio.sleep(delay)

    def _absorb_display(self, display: dict, count_display: bool) -> None:
        for task in display.get("tasks", []):
            self.task_keywords[task["task_id"]] = frozenset(task["keywords"])
        self.pending = list(display.get("pending", []))
        if count_display:
            shown = [task["task_id"] for task in display.get("tasks", [])]
            self.shared.record_display(shown)

    def _choose_task(self) -> str:
        novelties = []
        relevances = []
        window = self.recent[-self.behavior.params.novelty_window:]
        for task_id in self.pending:
            keywords = self.task_keywords.get(task_id, frozenset())
            if window:
                novelty = float(
                    np.mean([_keyword_jaccard(keywords, seen) for seen in window])
                )
            else:
                novelty = 1.0
            novelties.append(novelty)
            relevances.append(1.0 - _keyword_jaccard(keywords, self.keywords))
        position = self.behavior.choose_next(
            np.asarray(novelties), np.asarray(relevances)
        )
        self.recent.append(self.task_keywords.get(self.pending[position], frozenset()))
        self.behavior.register_completion(novelties[position])
        self._last_novelty = novelties[position]
        self._last_relevance = relevances[position]
        return self.pending[position]

    def _answer_for(self, task_id: str) -> int:
        """This worker's answer label for ``task_id``.

        Honest workers recompute the daemon's content-derived truth from
        the displayed keywords and pass it through their accuracy model;
        adversarial personas corrupt it per
        :meth:`repro.crowd.behavior.WorkerBehavior.answer_label`.
        Colluders agree on a clique-wide label that is itself a content
        hash, so clique members answer identically without coordination.
        """
        keywords = sorted(self.task_keywords.get(task_id, frozenset()))
        truth = truth_label(
            keywords, self.config.quality_seed, self.config.answer_labels
        )
        collusion_label = None
        if self.behavior.persona is not None and (
            self.behavior.persona.kind == "colluder"
        ):
            digest = _digest(
                "clique",
                self.config.quality_seed,
                self.behavior.persona.clique,
                ",".join(keywords),
            )
            collusion_label = int.from_bytes(digest[:8], "big")
        return self.behavior.answer_label(
            truth,
            self.config.answer_labels,
            self._last_novelty,
            self._last_relevance,
            collusion_label=collusion_label,
        )

    async def run(self) -> None:
        self.shared.result.workers_started += 1
        try:
            if self.config.spawn_delay > 0:
                await asyncio.sleep(self._rng.exponential(self.config.spawn_delay))
            status, body = await self._request(
                "POST",
                "/workers",
                {"worker_id": self.worker_id, "keywords": sorted(self.keywords)},
            )
            if status != 200:
                return
            if body.get("already_registered"):
                # A lost response made the retry land on an existing
                # registration; the daemon answered with the current display.
                self.shared.result.deduplicated_responses += 1
            self._absorb_display(body["display"], count_display=True)
            last_iteration = body["display"]["iteration"]
            for completion_index in range(self.config.completions_per_worker):
                if not self.pending:
                    break
                task_id = self._choose_task()
                if self.config.think_time > 0:
                    await asyncio.sleep(
                        self._rng.exponential(self.config.think_time)
                    )
                complete_started = time.perf_counter()
                # The key is built once per *logical* completion, so every
                # retry of a lost response carries the same key and the
                # daemon can recognize the duplicate delivery.
                complete_body = {
                    "worker_id": self.worker_id,
                    "task_id": task_id,
                    "completion_key": f"{self.worker_id}:{completion_index}",
                }
                if self.config.answer_labels > 0:
                    complete_body["answer"] = self._answer_for(task_id)
                status, body = await self._request(
                    "POST", "/complete", complete_body
                )
                if status != 200:
                    break
                if body.get("deduplicated"):
                    self.shared.result.deduplicated_responses += 1
                self.shared.result.completions += 1
                display = body["display"]
                is_new = display["iteration"] != last_iteration
                complete_elapsed = time.perf_counter() - complete_started
                if body.get("reassigned"):
                    self.shared.result.reassignments += 1
                    self.shared.assign_latency.observe(complete_elapsed)
                else:
                    self.shared.plain_latency.observe(complete_elapsed)
                self._absorb_display(display, count_display=is_new)
                last_iteration = display["iteration"]
            await self._request("DELETE", f"/workers/{self.worker_id}")
            self.shared.result.workers_finished += 1
        except (OSError, asyncio.IncompleteReadError, EOFError, KeyError):
            pass  # already counted as transport/protocol failure
        finally:
            self.shared.result.connections_opened += self.client.connections_opened
            await self.client.close()


class _ArrivalDriver:
    """Posts new tasks to ``/tasks`` while the workers run.

    Arrival ids are ``arr-{i}`` — disjoint from the corpus's ``t{i}``
    namespace, so a collision rejection always indicates a real bug rather
    than an unlucky id draw.  Burst batches share a base keyword set with
    one keyword swapped per member, producing the correlated-similarity
    arrivals that stress the diversity cache's block-append path hardest.
    """

    def __init__(
        self,
        config: LoadgenConfig,
        vocabulary: list[str],
        shared: _SharedState,
        rng: np.random.Generator,
    ):
        self.config = config
        self.vocabulary = vocabulary
        self.shared = shared
        self._rng = rng
        self.client = HttpClient(config.host, config.port)

    def _keywords(self, base: list[str] | None = None) -> list[str]:
        """One task's keyword list; perturbs ``base`` when given."""
        take = min(self.config.n_keywords, len(self.vocabulary))
        if base is None:
            picks = self._rng.choice(len(self.vocabulary), size=take, replace=False)
            return sorted(self.vocabulary[int(i)] for i in picks)
        swapped = list(base)
        if swapped and len(self.vocabulary) > len(swapped):
            out = int(self._rng.integers(len(swapped)))
            pool = [k for k in self.vocabulary if k not in swapped]
            swapped[out] = pool[int(self._rng.integers(len(pool)))]
        return sorted(swapped)

    def _batches(self) -> list[list[dict]]:
        """The full arrival schedule, one entry per ``POST /tasks``."""
        config = self.config
        specs = []
        if config.arrival_pattern == "trickle":
            sizes = [1] * config.arrival_tasks
        elif config.arrival_pattern == "spike":
            sizes = [config.arrival_tasks]
        else:  # burst
            sizes, left = [], config.arrival_tasks
            while left > 0:
                sizes.append(min(config.arrival_batch, left))
                left -= sizes[-1]
        index = 0
        for batch_no, size in enumerate(sizes):
            base = (
                self._keywords()
                if config.arrival_pattern == "burst"
                else None
            )
            batch = []
            for _ in range(size):
                batch.append(
                    {
                        "task_id": f"arr-{index}",
                        "keywords": self._keywords(base),
                        "group": "arrival",
                        "title": f"arrival {index}",
                    }
                )
                index += 1
            specs.append(batch)
        return specs

    async def _post(self, batch: list[dict]) -> None:
        config = self.config
        attempt = 0
        while True:
            started = time.perf_counter()
            try:
                status, _body = await self.client.request(
                    "POST", "/tasks", {"tasks": batch}
                )
            except (OSError, asyncio.IncompleteReadError, EOFError):
                self.shared.latency.observe(time.perf_counter() - started)
                self.shared.result.requests += 1
                if attempt >= config.max_retries:
                    self.shared.result.arrival_failures += 1
                    return
                attempt += 1
                self.shared.result.retries += 1
                await asyncio.sleep(
                    min(
                        config.backoff_cap,
                        config.backoff_base * (2 ** (attempt - 1)),
                    )
                )
                continue
            self.shared.latency.observe(time.perf_counter() - started)
            self.shared.result.requests += 1
            if status >= 500 and attempt < config.max_retries:
                attempt += 1
                self.shared.result.retries += 1
                continue
            if status == 409 and attempt > 0:
                # A lost response made the retry collide with its own
                # earlier admission; the batch is in the pool.
                self.shared.result.deduplicated_responses += 1
            elif status != 200:
                self.shared.result.arrival_failures += 1
                return
            self.shared.result.tasks_posted += len(batch)
            self.shared.result.arrival_batches += 1
            return

    async def run(self) -> None:
        config = self.config
        try:
            for batch in self._batches():
                if config.arrival_interval > 0:
                    await asyncio.sleep(config.arrival_interval)
                await self._post(batch)
        finally:
            self.shared.result.connections_opened += self.client.connections_opened
            await self.client.close()


async def run_loadgen(config: LoadgenConfig | None = None) -> LoadgenResult:
    """Drive one closed-loop run against a live daemon; returns the result."""
    config = config or LoadgenConfig()
    shared = _SharedState()
    probe = HttpClient(config.host, config.port)
    try:
        # The probe runs against the same (possibly fault-injected) daemon
        # as the workers, so give it the same transport-retry budget: a
        # chaos plan may drop the probe's response just like any other.
        for remaining in range(config.max_retries, -1, -1):
            try:
                status, body = await probe.request("GET", "/vocabulary")
                break
            except (OSError, asyncio.IncompleteReadError, EOFError):
                if not remaining:
                    raise
                await asyncio.sleep(0.05)
    finally:
        shared.result.connections_opened += probe.connections_opened
        await probe.close()
    if status != 200:
        raise RuntimeError(f"daemon refused /vocabulary: HTTP {status}")
    vocabulary = list(body["keywords"])
    seed_source = ensure_rng(config.seed)
    if (
        config.spammer_fraction or config.drifting_fraction
        or config.colluder_fraction
    ):
        personas = sample_personas(
            config.n_workers,
            rng=np.random.default_rng(seed_source.integers(0, 2**63)),
            spammer_fraction=config.spammer_fraction,
            drifting_fraction=config.drifting_fraction,
            colluder_fraction=config.colluder_fraction,
            clique_size=config.clique_size,
            drift_per_task=config.drift_per_task,
        )
    else:
        # All honest, without consuming the seed stream: a persona-free
        # config drives byte-identical load to builds before personas.
        personas = [Persona() for _ in range(config.n_workers)]
    workers = [
        _SimulatedWorker(
            f"lg-w{i}",
            config,
            vocabulary,
            shared,
            np.random.default_rng(seed_source.integers(0, 2**63)),
            persona=personas[i],
        )
        for i in range(config.n_workers)
    ]
    drivers = []
    if config.arrival_pattern is not None:
        drivers.append(
            _ArrivalDriver(
                config,
                vocabulary,
                shared,
                np.random.default_rng(seed_source.integers(0, 2**63)),
            )
        )
    started = time.perf_counter()
    await asyncio.gather(
        *(worker.run() for worker in workers),
        *(driver.run() for driver in drivers),
    )
    shared.result.duration_seconds = time.perf_counter() - started
    shared.result.latency = {
        "mean": shared.latency.summary()["mean"],
        "p50": shared.latency.quantile(0.50),
        "p95": shared.latency.quantile(0.95),
        "p99": shared.latency.quantile(0.99),
    }
    shared.result.assign_latency = {
        "mean": shared.assign_latency.summary()["mean"],
        "p50": shared.assign_latency.quantile(0.50),
        "p95": shared.assign_latency.quantile(0.95),
        "p99": shared.assign_latency.quantile(0.99),
    }
    shared.result.plain_latency = {
        "mean": shared.plain_latency.summary()["mean"],
        "p50": shared.plain_latency.quantile(0.50),
        "p95": shared.plain_latency.quantile(0.95),
        "p99": shared.plain_latency.quantile(0.99),
    }
    return shared.result


async def run_self_contained(
    config: LoadgenConfig,
    n_tasks: int = 2000,
    strategy: str = "hta-gre",
    serve_config: "ServeConfig | None" = None,
) -> tuple[LoadgenResult, dict]:
    """Spawn an in-process daemon, run the loadgen against it, tear down.

    Returns the loadgen result plus the daemon's metrics snapshot — the CI
    smoke test and the throughput benchmark both use this.  Pass
    ``serve_config`` to control the daemon fully (e.g. ``solver_workers``);
    its host/port are overridden to co-locate with the load generator.
    """
    from dataclasses import replace

    from ..data import CrowdFlowerConfig, generate_crowdflower_corpus
    from .app import AssignmentDaemon, ServeConfig

    corpus = generate_crowdflower_corpus(
        CrowdFlowerConfig(n_tasks=n_tasks), rng=config.seed
    )
    # The spec lets a journal recorded against this daemon rebuild the exact
    # pool later (``repro replay`` re-derives the corpus from it).
    corpus_spec = {"kind": "crowdflower", "n_tasks": n_tasks, "seed": config.seed}
    if serve_config is None:
        serve_config = ServeConfig(
            host=config.host,
            port=0,
            strategy=strategy,
            seed=config.seed,
            corpus_spec=corpus_spec,
        )
    else:
        serve_config = replace(serve_config, host=config.host, port=0)
        if serve_config.corpus_spec is None:
            serve_config = replace(serve_config, corpus_spec=corpus_spec)
    daemon = AssignmentDaemon(corpus.pool, serve_config)
    await daemon.start()
    try:
        result = await run_loadgen(replace(config, port=daemon.port))
        snapshot = daemon.registry.snapshot()
    finally:
        await daemon.stop()
    return result, snapshot


async def run_sharded(
    config: LoadgenConfig,
    n_shards: int,
    n_tasks: int = 2000,
    strategy: str = "hta-gre",
    serve_config: "ServeConfig | None" = None,
    journal_dir: "str | None" = None,
    routing_journal: "str | None" = None,
) -> tuple[LoadgenResult, dict]:
    """Self-contained sharded run: N shards behind a router, all driven.

    Spawns an in-process :class:`~repro.serve.shard.ShardCluster` over
    disjoint corpus slices plus a :class:`~repro.serve.router.RouterDaemon`
    on ephemeral ports, then points the closed-loop crowd at the *router* —
    so the loadgen's global duplicate-display oracle is checking C1/C2
    across shard boundaries, not just within one daemon.  With
    ``journal_dir`` each shard records a flight journal
    (``journal-shardN.jsonl``, each verifiable with ``repro replay``);
    ``routing_journal`` records the router's decisions for
    :func:`~repro.serve.router.verify_routing_journal`.

    Returns the loadgen result plus
    ``{"router": ..., "shards": [...]}`` metrics snapshots.
    """
    from dataclasses import replace

    from ..data import CrowdFlowerConfig, generate_crowdflower_corpus
    from .app import ServeConfig
    from .router import RouterConfig, RouterDaemon
    from .shard import ShardCluster

    corpus = generate_crowdflower_corpus(
        CrowdFlowerConfig(n_tasks=n_tasks), rng=config.seed
    )
    corpus_spec = {"kind": "crowdflower", "n_tasks": n_tasks, "seed": config.seed}
    if serve_config is None:
        serve_config = ServeConfig(
            host=config.host, port=0, strategy=strategy, seed=config.seed,
            corpus_spec=corpus_spec,
        )
    else:
        serve_config = replace(serve_config, host=config.host, port=0)
        if serve_config.corpus_spec is None:
            serve_config = replace(serve_config, corpus_spec=corpus_spec)
    journal_base = None
    if journal_dir is not None:
        os.makedirs(journal_dir, exist_ok=True)
        journal_base = os.path.join(journal_dir, "journal.jsonl")
    serve_config = replace(serve_config, journal_path=journal_base)
    cluster = ShardCluster(corpus.pool, serve_config, n_shards)
    await cluster.start()
    router = RouterDaemon(
        cluster.specs,
        RouterConfig(host=config.host, port=0, journal_path=routing_journal),
    )
    await router.start()
    try:
        result = await run_loadgen(replace(config, port=router.port))
        snapshot = {
            "router": router.registry.snapshot(),
            "shards": [d.registry.snapshot() for d in cluster.daemons],
        }
    finally:
        await router.stop()
        await cluster.stop()
    return result, snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Closed-loop load generator for the repro assignment daemon",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=50)
    parser.add_argument("--completions", type=int, default=10)
    parser.add_argument("--keywords", type=int, default=6)
    parser.add_argument("--think-time", type=float, default=0.0)
    parser.add_argument("--spawn-delay", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--retries", type=int, default=3,
        help="max retries per logical request (transport errors and 5xx)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="per-request deadline in ms, propagated via x-deadline-ms "
             "(0 disables)",
    )
    parser.add_argument(
        "--spawn-server",
        action="store_true",
        help="start an in-process daemon on an ephemeral port and drive it",
    )
    parser.add_argument(
        "--tasks", type=int, default=2000,
        help="corpus size for --spawn-server",
    )
    parser.add_argument("--strategy", default="hta-gre")
    parser.add_argument(
        "--solver-workers", type=int, default=0,
        help="solver worker processes for --spawn-server (0 = in-loop solves)",
    )
    parser.add_argument(
        "--trace-file", default=None,
        help="JSONL trace file for the spawned daemon (--spawn-server only)",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=0.0,
        help="fraction of requests the spawned daemon traces, in [0, 1]",
    )
    parser.add_argument(
        "--journal", default=None,
        help="record the spawned daemon's flight journal to this JSONL file "
             "(--spawn-server only; replay it with `repro replay`)",
    )
    parser.add_argument(
        "--fault-plan", default=None,
        help="JSON file with a FaultPlan for the spawned daemon "
             "(--spawn-server only)",
    )
    parser.add_argument(
        "--answer-labels", type=int, default=0,
        help="send integer answers in [0, N) with every completion "
             "(0 disables; required for quality scenarios)",
    )
    parser.add_argument(
        "--quality-seed", type=int, default=0,
        help="seed for content-derived truth labels (must match the "
             "daemon's gold seed)",
    )
    parser.add_argument(
        "--spammers", type=float, default=0.0,
        help="fraction of workers answering uniformly at random",
    )
    parser.add_argument(
        "--drifting", type=float, default=0.0,
        help="fraction of workers whose accuracy decays per completion",
    )
    parser.add_argument(
        "--colluders", type=float, default=0.0,
        help="fraction of workers colluding in answer cliques",
    )
    parser.add_argument(
        "--arrival-pattern", default=None,
        choices=["trickle", "burst", "spike"],
        help="inject new tasks via POST /tasks while workers run "
             "(trickle = singles, burst = correlated batches, "
             "spike = one entry rush)",
    )
    parser.add_argument(
        "--arrival-tasks", type=int, default=0,
        help="total tasks the arrival driver posts over the run",
    )
    parser.add_argument(
        "--arrival-batch", type=int, default=5,
        help="batch size for --arrival-pattern burst",
    )
    parser.add_argument(
        "--arrival-interval", type=float, default=0.05,
        help="seconds between arrival posts",
    )
    parser.add_argument(
        "--gold-rate", type=float, default=0.0,
        help="spawned daemon's gold-injection rate (--spawn-server only)",
    )
    parser.add_argument(
        "--redundancy", type=int, default=1,
        help="spawned daemon's answers-per-task target (--spawn-server only)",
    )
    parser.add_argument(
        "--reputation-weight", type=float, default=0.0,
        help="spawned daemon's reputation-weighted relevance term "
             "(--spawn-server only)",
    )
    parser.add_argument(
        "--shared-memory", action=argparse.BooleanOptionalAction, default=True,
        help="ship solves to engine workers via shared memory "
             "(--spawn-server only; --no-shared-memory forces pickling)",
    )
    parser.add_argument(
        "--estimator", choices=["plain", "bayes"], default="plain",
        help="spawned daemon's motivation estimator (--spawn-server only)",
    )
    parser.add_argument(
        "--bandit", choices=["off", "thompson", "ucb"], default="off",
        help="spawned daemon's weight-policy bandit (--spawn-server only; "
             "thompson requires --estimator bayes)",
    )
    parser.add_argument(
        "--tier-policy", choices=["streak", "bandit"], default="streak",
        help="spawned daemon's solver-tier selection policy "
             "(--spawn-server only)",
    )
    parser.add_argument(
        "--uvloop", choices=["auto", "on", "off"], default="auto",
        help="event-loop policy: auto uses uvloop when installed, "
             "on requires it, off keeps the stdlib loop",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="with --spawn-server: spawn an N-shard cluster behind a "
             "router on ephemeral ports and drive the router "
             "(0 keeps the classic single daemon)",
    )
    parser.add_argument(
        "--shard-journal-dir", default=None,
        help="with --shards: record each shard's flight journal to "
             "DIR/journal-shardN.jsonl (verify with `repro replay`)",
    )
    parser.add_argument(
        "--routing-journal", default=None,
        help="with --shards: record the router's routing journal to this "
             "JSONL file (verify with `repro replay`)",
    )
    args = parser.parse_args(argv)
    install_uvloop(args.uvloop)
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        completions_per_worker=args.completions,
        n_keywords=args.keywords,
        think_time=args.think_time,
        spawn_delay=args.spawn_delay,
        seed=args.seed,
        max_retries=args.retries,
        request_deadline=args.deadline_ms / 1000.0,
        answer_labels=args.answer_labels,
        quality_seed=args.quality_seed,
        spammer_fraction=args.spammers,
        drifting_fraction=args.drifting,
        colluder_fraction=args.colluders,
        arrival_pattern=args.arrival_pattern,
        arrival_tasks=args.arrival_tasks,
        arrival_batch=args.arrival_batch,
        arrival_interval=args.arrival_interval,
    )
    if args.shards > 0 and not args.spawn_server:
        print("--shards requires --spawn-server", file=sys.stderr)
        return 2
    if args.shards > 0 and args.journal:
        print(
            "--journal is single-daemon only; use --shard-journal-dir and "
            "--routing-journal with --shards",
            file=sys.stderr,
        )
        return 2
    if args.bandit == "thompson" and args.estimator != "bayes":
        print("--bandit thompson requires --estimator bayes", file=sys.stderr)
        return 2
    if args.spawn_server:
        serve_config = None
        quality_wanted = args.gold_rate > 0 or args.redundancy > 1
        adaptivity_wanted = (
            args.estimator != "plain"
            or args.bandit != "off"
            or args.tier_policy != "streak"
        )
        if (
            args.trace_file
            or args.trace_sample_rate > 0
            or args.solver_workers > 0
            or args.journal
            or args.fault_plan
            or quality_wanted
            or args.reputation_weight > 0
            or not args.shared_memory
            or adaptivity_wanted
        ):
            from ..crowd.service import ServiceConfig
            from ..quality import (
                AdjudicationConfig,
                GoldConfig,
                QualityConfig,
            )
            from .app import ServeConfig
            from .resilience import FaultPlan

            fault_plan = (
                FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
            )
            quality = None
            if quality_wanted:
                quality = QualityConfig(
                    gold=GoldConfig(
                        rate=args.gold_rate,
                        seed=args.quality_seed,
                        n_labels=max(2, args.answer_labels),
                    ),
                    adjudication=AdjudicationConfig(redundancy=args.redundancy),
                )
            serve_config = ServeConfig(
                strategy=args.strategy,
                seed=args.seed,
                service=ServiceConfig(
                    reputation_weight=args.reputation_weight
                ),
                solver_workers=args.solver_workers,
                shared_memory=args.shared_memory,
                trace_file=args.trace_file,
                trace_sample_rate=args.trace_sample_rate,
                fault_plan=fault_plan,
                journal_path=args.journal,
                quality=quality,
                estimator=args.estimator,
                bandit=args.bandit,
                tier_policy=args.tier_policy,
            )
        if args.shards > 0:
            result, snapshot = asyncio.run(
                run_sharded(
                    config,
                    args.shards,
                    n_tasks=args.tasks,
                    strategy=args.strategy,
                    serve_config=serve_config,
                    journal_dir=args.shard_journal_dir,
                    routing_journal=args.routing_journal,
                )
            )
        else:
            result, snapshot = asyncio.run(
                run_self_contained(
                    config,
                    n_tasks=args.tasks,
                    strategy=args.strategy,
                    serve_config=serve_config,
                )
            )
        payload = {"loadgen": result.to_dict(), "daemon_metrics": snapshot}
    else:
        result = asyncio.run(run_loadgen(config))
        payload = {"loadgen": result.to_dict()}
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInstanceError(ReproError):
    """An HTA instance is malformed (bad sizes, weights, or constraints)."""


class InvalidAssignmentError(ReproError):
    """A task assignment violates the HTA constraints (C1 or C2)."""


class NotAMetricError(ReproError):
    """A distance function failed a metric-property check."""


class InfeasibleProblemError(ReproError):
    """A matching or assignment subproblem has no feasible solution."""


class UnknownSolverError(ReproError):
    """A solver name was not found in the solver registry."""


class SimulationError(ReproError):
    """The crowd-platform simulation reached an inconsistent state."""

"""repro — reproduction of "Task Relevance and Diversity as Worker Motivation
in Crowdsourcing" (Pilourdault, Amer-Yahia, Basu Roy, Lee; ICDE 2018).

The package implements the paper end to end:

* :mod:`repro.core` — the motivation model (Eqs. 1-3), the HTA problem, the
  MAXQAP encoding (Eqs. 4-8), the HTA-APP / HTA-GRE approximation algorithms,
  baselines, an exact oracle, and the adaptive alpha/beta estimation loop;
* :mod:`repro.matching` — the combinatorial substrate: greedy and exact
  maximum-weight matching and four LSAP solvers (Hungarian, greedy, auction,
  brute force), all from scratch;
* :mod:`repro.crowd` — a discrete-event crowdsourcing-platform simulator
  reproducing the paper's online deployment (Fig. 4 workflow, Fig. 5
  metrics);
* :mod:`repro.data` — synthetic AMT / CrowdFlower workload generators
  standing in for the paper's crawled corpora;
* :mod:`repro.analysis` — the statistics (z-test, Mann-Whitney U) and curve
  machinery (cumulative quality/throughput, retention survival);
* :mod:`repro.experiments` — ready-to-run drivers for every figure.

Quickstart::

    from repro import HTAInstance, TaskPool, WorkerPool, get_solver

    solver = get_solver("hta-gre")
    result = solver.solve(instance, rng=42)
    print(result.assignment.summary(), result.objective)
"""

from .core import (
    Assignment,
    HTAInstance,
    MotivationEstimator,
    MotivationWeights,
    Task,
    TaskPool,
    Vocabulary,
    Worker,
    WorkerPool,
    motivation,
    run_adaptive_loop,
    task_diversity,
    task_relevance,
)
from .core.solvers import SolveResult, Solver, get_solver, solver_names
from .errors import (
    InfeasibleProblemError,
    InvalidAssignmentError,
    InvalidInstanceError,
    NotAMetricError,
    ReproError,
    SimulationError,
    UnknownSolverError,
)

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "HTAInstance",
    "InfeasibleProblemError",
    "InvalidAssignmentError",
    "InvalidInstanceError",
    "MotivationEstimator",
    "MotivationWeights",
    "NotAMetricError",
    "ReproError",
    "SimulationError",
    "SolveResult",
    "Solver",
    "Task",
    "TaskPool",
    "UnknownSolverError",
    "Vocabulary",
    "Worker",
    "WorkerPool",
    "__version__",
    "get_solver",
    "motivation",
    "run_adaptive_loop",
    "solver_names",
    "task_diversity",
    "task_relevance",
]

"""Command-line interface: ``repro-hta`` (or ``python -m repro``).

Subcommands:

* ``solve`` — generate a synthetic instance and run a solver on it;
* ``diagnose`` — lint a synthetic instance (degeneracy findings);
* ``offline`` — run one of the offline sweeps (fig2a, fig2b, fig2c, fig3);
* ``online`` — run the Fig. 5 online experiment and print curves + tests;
* ``teams`` — team formation for collaborative tasks (future-work demo);
* ``report`` — run every experiment and write a markdown report;
* ``serve`` — run the online assignment daemon (JSON over HTTP);
* ``replay`` — re-drive a recorded serve journal and check bit-identity;
* ``solvers`` — list registered solvers.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.ascii_plot import ascii_plot
from .analysis.tables import format_series, format_table
from .core.solvers import get_solver, solver_names
from .experiments.config import OfflineScale, OnlineScale
from .experiments.offline import (
    ROW_HEADERS,
    build_offline_instance,
    sweep_groups,
    sweep_tasks,
    sweep_workers,
)
from .experiments.online import run_online_experiment


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hta",
        description="Motivation-aware task assignment (ICDE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    p_solvers = sub.add_parser("solvers", help="list registered solvers")
    p_solvers.set_defaults(handler=_cmd_solvers)

    p_solve = sub.add_parser("solve", help="solve one synthetic instance")
    p_solve.add_argument("--tasks", type=int, default=200)
    p_solve.add_argument("--workers", type=int, default=10)
    p_solve.add_argument("--x-max", type=int, default=5)
    p_solve.add_argument("--tasks-per-group", type=int, default=20)
    p_solve.add_argument("--solver", default="hta-gre", choices=solver_names())
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.set_defaults(handler=_cmd_solve)

    p_diag = sub.add_parser("diagnose", help="lint a synthetic instance")
    p_diag.add_argument("--tasks", type=int, default=200)
    p_diag.add_argument("--workers", type=int, default=10)
    p_diag.add_argument("--x-max", type=int, default=5)
    p_diag.add_argument("--tasks-per-group", type=int, default=20)
    p_diag.add_argument("--seed", type=int, default=0)
    p_diag.set_defaults(handler=_cmd_diagnose)

    p_off = sub.add_parser("offline", help="run an offline sweep")
    p_off.add_argument(
        "figure", choices=["fig2a", "fig2b", "fig2c", "fig3"],
        help="which paper figure to regenerate",
    )
    p_off.add_argument("--seed", type=int, default=0)
    p_off.add_argument("--repeats", type=int, default=None)
    p_off.set_defaults(handler=_cmd_offline)

    p_on = sub.add_parser("online", help="run the Fig. 5 online experiment")
    p_on.add_argument("--sessions", type=int, default=None)
    p_on.add_argument("--corpus-size", type=int, default=None)
    p_on.add_argument("--seed", type=int, default=0)
    p_on.add_argument(
        "--plot", action="store_true", help="render ASCII charts of the curves"
    )
    p_on.set_defaults(handler=_cmd_online)

    p_teams = sub.add_parser(
        "teams", help="team formation for collaborative tasks (future-work demo)"
    )
    p_teams.add_argument("--tasks", type=int, default=3)
    p_teams.add_argument("--team-size", type=int, default=3)
    p_teams.add_argument("--workers", type=int, default=12)
    p_teams.add_argument("--seed", type=int, default=0)
    p_teams.set_defaults(handler=_cmd_teams)

    p_report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    p_report.add_argument("--out", default="reproduction_report.md")
    p_report.add_argument("--db", default=None,
                          help="also persist measurements to this SQLite file")
    p_report.add_argument("--fast", action="store_true",
                          help="reduced scale (seconds instead of minutes)")
    p_report.add_argument("--figures-dir", default=None,
                          help="also write each figure as an SVG into this directory")
    p_report.add_argument("--seed", type=int, default=0)
    p_report.set_defaults(handler=_cmd_report)

    p_serve = sub.add_parser(
        "serve", help="run the online assignment daemon (see docs/SERVING.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--tasks", type=int, default=2000,
                         help="synthetic corpus size to serve")
    p_serve.add_argument("--strategy", default="hta-gre", choices=solver_names())
    p_serve.add_argument("--x-max", type=int, default=15)
    p_serve.add_argument("--random-pad", type=int, default=5)
    p_serve.add_argument("--reassign-after", type=int, default=8)
    p_serve.add_argument("--min-pending", type=int, default=3)
    p_serve.add_argument("--candidate-cap", type=int, default=400,
                         help="solver shortlist size; 0 disables shortlisting")
    p_serve.add_argument("--batch-delay-ms", type=float, default=50.0,
                         help="solve micro-batch coalescing window")
    p_serve.add_argument("--max-batch-size", type=int, default=64)
    p_serve.add_argument("--solver-workers", type=int, default=0,
                         help="solver processes for off-loop solves; 0 keeps "
                              "solves on the event loop (the default)")
    p_serve.add_argument("--shared-memory",
                         action=argparse.BooleanOptionalAction, default=True,
                         help="ship solves to engine workers via a shared-"
                              "memory task matrix; --no-shared-memory forces "
                              "pickled instances (diagnostic)")
    p_serve.add_argument("--uvloop", choices=["auto", "on", "off"],
                         default="auto",
                         help="event-loop policy: auto uses uvloop when "
                              "installed, on requires it, off keeps the "
                              "stdlib loop")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--request-deadline", type=float, default=2.0,
                         help="seconds a /complete may wait on a solve before "
                              "answering with the stale display")
    p_serve.add_argument("--solve-budget", type=float, default=0.5,
                         help="target seconds per batched solve; sustained "
                              "breaches degrade the solver tier")
    p_serve.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                         help="inject deterministic faults from a JSON fault "
                              "plan (see docs/SERVING.md)")
    p_serve.add_argument("--snapshot-path", default=None, metavar="FILE.db",
                         help="persist crash-safe state snapshots to this "
                              "SQLite file")
    p_serve.add_argument("--snapshot-every", type=int, default=20,
                         help="solve batches between automatic snapshots")
    p_serve.add_argument("--restore", action="store_true",
                         help="resume from the latest snapshot in "
                              "--snapshot-path before serving")
    p_serve.add_argument("--trace-file", default=None, metavar="TRACE.jsonl",
                         help="append one JSON line per sampled request trace "
                              "(aggregate with `repro trace summarize`)")
    p_serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                         help="fraction of requests to trace, in [0, 1] "
                              "(0 disables tracing, 1 traces everything)")
    p_serve.add_argument("--journal", default=None, metavar="JOURNAL.jsonl",
                         help="record a deterministic flight journal of every "
                              "request and solve (replay it with "
                              "`repro replay`)")
    p_serve.add_argument("--gold-rate", type=float, default=0.0,
                         help="per-display probability of injecting a gold "
                              "question into each worker's assignment "
                              "(0 disables the quality subsystem's gold path)")
    p_serve.add_argument("--redundancy", type=int, default=1,
                         help="answers to collect per task before "
                              "adjudicating (1 disables redundancy)")
    p_serve.add_argument("--reputation-weight", type=float, default=0.0,
                         help="blend factor in [0, 1] scaling the relevance "
                              "term by worker reputation (0 keeps the seed "
                              "assignment behaviour bit-identical)")
    p_serve.add_argument("--quality-seed", type=int, default=0,
                         help="seed for gold-bank selection and probe "
                              "injection decisions")
    p_serve.add_argument("--answer-labels", type=int, default=4,
                         help="size of the categorical answer space used for "
                              "gold truth labels (>= 2)")
    p_serve.add_argument("--shard-index", type=int, default=None,
                         help="serve shard INDEX of a --shard-count "
                              "deployment: this daemon owns the corpus "
                              "positions i with i %% count == index")
    p_serve.add_argument("--shard-count", type=int, default=None,
                         help="total shards in the deployment "
                              "(required with --shard-index)")
    p_serve.add_argument("--router", action="store_true",
                         help="run the shard router instead of a daemon: "
                              "spawns --shards local shard processes (or "
                              "attaches to --shard-addr ones) and proxies "
                              "by consistent hash on worker id")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="shard processes a --router spawns when no "
                              "--shard-addr is given")
    p_serve.add_argument("--shard-addr", action="append", default=None,
                         metavar="HOST:PORT",
                         help="attach the --router to an already-running "
                              "shard (repeat once per shard, in shard-index "
                              "order) instead of spawning local ones")
    p_serve.add_argument("--shard-journal-dir", default=None, metavar="DIR",
                         help="with --router-spawned shards, record each "
                              "shard's flight journal to DIR/shard-N.jsonl "
                              "(verify them with `repro replay`)")
    p_serve.add_argument("--estimator", choices=["plain", "bayes"],
                         default="plain",
                         help="motivation estimator: the paper's averaging "
                              "(plain) or the Beta-posterior Bayesian one "
                              "(required for --bandit thompson)")
    p_serve.add_argument("--bandit", choices=["off", "thompson", "ucb"],
                         default="off",
                         help="bandit policy over solve-time alpha/beta: "
                              "off keeps the estimator mean bit-identically")
    p_serve.add_argument("--tier-policy", choices=["streak", "bandit"],
                         default="streak",
                         help="solver-ladder tier selection: the fixed "
                              "breach/recovery streaks (streak) or the "
                              "contextual tier bandit (bandit)")
    p_serve.set_defaults(handler=_cmd_serve)

    p_replay = sub.add_parser(
        "replay",
        help="re-drive a recorded serve journal and check bit-identity",
    )
    p_replay.add_argument("journal", help="JSONL journal written by "
                                          "`repro serve --journal` (or a "
                                          "routing journal from a --router "
                                          "run, detected automatically)")
    p_replay.add_argument("--engine", action="store_true",
                          help="replay with the engine's worker-process solve "
                               "semantics instead of in-loop semantics")
    p_replay.add_argument("--differential", action="store_true",
                          help="replay under every configuration that must "
                               "agree (in-loop, engine, oracle kernels) and "
                               "report each variant's first divergence")
    p_replay.add_argument("--pin-tier", default=None, metavar="SOLVER",
                          help="with --differential, also replay with every "
                               "solve pinned to this degradation-ladder tier "
                               "(a diagnostic; divergence is reported but "
                               "not fatal)")
    p_replay.set_defaults(handler=_cmd_replay)

    p_trace = sub.add_parser(
        "trace", help="work with request trace files (see docs/SERVING.md)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="per-stage latency breakdown of a JSONL trace file"
    )
    p_summarize.add_argument("file", help="JSONL trace file written by "
                                          "`repro serve --trace-file`")
    p_summarize.add_argument("--strict", action="store_true",
                             help="exit non-zero when the file is empty or "
                                  "any root span never closed (trace leak)")
    p_summarize.set_defaults(handler=_cmd_trace_summarize)
    return parser


def _cmd_solvers(args: argparse.Namespace) -> int:
    for name in solver_names():
        print(name)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = build_offline_instance(
        args.tasks, args.tasks_per_group, args.workers, args.x_max, rng=args.seed
    )
    solver = get_solver(args.solver)
    result = solver.solve(instance, rng=args.seed)
    print(instance.describe())
    print(f"solver    : {args.solver}")
    print(f"objective : {result.objective:.4f}")
    print(f"assigned  : {result.assignment.size()} tasks")
    for phase, seconds in sorted(result.timings.items()):
        print(f"time[{phase}] : {seconds * 1e3:.2f} ms")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .validate import diagnose, has_blockers

    instance = build_offline_instance(
        args.tasks, args.tasks_per_group, args.workers, args.x_max, rng=args.seed
    )
    print(instance.describe())
    findings = diagnose(instance)
    if not findings:
        print("no findings: the instance looks healthy")
        return 0
    for finding in findings:
        print(f"[{finding.severity:7s}] {finding.code}: {finding.message}")
    return 1 if has_blockers(findings) else 0


def _cmd_offline(args: argparse.Namespace) -> int:
    scale = OfflineScale()
    repeats = args.repeats if args.repeats is not None else scale.n_repeats
    if args.figure in ("fig2a", "fig2b"):
        points = sweep_tasks(
            scale.task_sweep, scale.tasks_per_group, scale.n_workers,
            scale.x_max, n_repeats=repeats, rng=args.seed,
        )
    elif args.figure == "fig2c":
        points = sweep_workers(
            scale.worker_sweep, scale.n_tasks_for_worker_sweep,
            scale.tasks_per_group, scale.x_max, n_repeats=repeats, rng=args.seed,
        )
    else:
        points = sweep_groups(
            scale.group_sweep, scale.n_tasks_for_group_sweep, scale.n_workers,
            scale.x_max, n_repeats=repeats, rng=args.seed,
        )
    print(format_table(ROW_HEADERS, [p.row() for p in points], title=args.figure))
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    scale = OnlineScale()
    overrides = {}
    if args.sessions is not None:
        overrides["n_sessions"] = args.sessions
    if args.corpus_size is not None:
        overrides["corpus_size"] = args.corpus_size
    if overrides:
        from dataclasses import replace

        scale = replace(scale, **overrides)
    result = run_online_experiment(scale=scale, rng=args.seed)
    for strategy, outcome in result.outcomes.items():
        print(f"== {strategy} ==")
        for key, value in outcome.summary.items():
            print(f"  {key}: {value:.2f}")
    minutes = list(range(0, 31, 5))
    for metric in ("quality", "throughput", "retention"):
        series = {
            strategy: [getattr(o, metric).at(m) for m in minutes]
            for strategy, o in result.outcomes.items()
        }
        print(format_series("minute", series, minutes, title=f"Fig.5 {metric}"))
        if args.plot:
            print(ascii_plot(series, title=f"Fig.5 {metric} (x = minutes)"))
    print("significance tests:")
    for name, test in result.significance.items():
        print(f"  {name}: p={test.p_value:.4f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportConfig, generate_report

    if args.fast:
        config = ReportConfig.fast(
            seed=args.seed, store_path=args.db, figures_dir=args.figures_dir
        )
    else:
        config = ReportConfig(
            seed=args.seed, store_path=args.db, figures_dir=args.figures_dir
        )
    text = generate_report(config)
    from pathlib import Path

    Path(args.out).write_text(text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    if args.db:
        print(f"measurements stored in {args.db}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .crowd.service import ServiceConfig
    from .data import CrowdFlowerConfig, generate_crowdflower_corpus
    from .serve import FaultPlan, ResilienceConfig, ServeConfig, run_daemon
    from .serve.protocol import install_uvloop

    install_uvloop(args.uvloop)

    if (args.shard_index is None) != (args.shard_count is None):
        print("--shard-index and --shard-count go together", file=sys.stderr)
        return 2
    if args.shard_index is not None and args.router:
        print("--shard-index is a daemon flag; --router owns no slice",
              file=sys.stderr)
        return 2
    corpus = generate_crowdflower_corpus(
        CrowdFlowerConfig(n_tasks=args.tasks), rng=args.seed
    )
    fault_plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    if args.restore and not args.snapshot_path:
        print("--restore requires --snapshot-path", file=sys.stderr)
        return 2
    if args.bandit == "thompson" and args.estimator != "bayes":
        print("--bandit thompson requires --estimator bayes "
              "(Thompson samples the Beta posterior)", file=sys.stderr)
        return 2
    quality = None
    if args.gold_rate > 0 or args.redundancy > 1:
        from .quality import AdjudicationConfig, GoldConfig, QualityConfig

        quality = QualityConfig(
            gold=GoldConfig(
                rate=args.gold_rate,
                seed=args.quality_seed,
                n_labels=max(2, args.answer_labels),
            ),
            adjudication=AdjudicationConfig(redundancy=args.redundancy),
        )
    corpus_spec = {
        "kind": "crowdflower", "n_tasks": args.tasks, "seed": args.seed,
    }
    pool = corpus.pool
    if args.shard_index is not None:
        from .serve.shard import ShardError, shard_slice

        try:
            pool = shard_slice(pool, args.shard_index, args.shard_count)
        except ShardError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        corpus_spec["shard"] = {
            "index": args.shard_index, "count": args.shard_count,
        }
    config = ServeConfig(
        host=args.host,
        port=args.port,
        strategy=args.strategy,
        service=ServiceConfig(
            x_max=args.x_max,
            n_random_pad=args.random_pad,
            reassign_after=args.reassign_after,
            min_pending=args.min_pending,
            candidate_cap=args.candidate_cap or None,
            reputation_weight=args.reputation_weight,
        ),
        quality=quality,
        max_batch_delay=args.batch_delay_ms / 1000.0,
        max_batch_size=args.max_batch_size,
        solver_workers=args.solver_workers,
        shared_memory=args.shared_memory,
        seed=args.seed,
        resilience=ResilienceConfig(
            request_deadline=args.request_deadline,
            solve_budget=args.solve_budget,
        ),
        fault_plan=fault_plan,
        snapshot_path=args.snapshot_path,
        snapshot_every=args.snapshot_every,
        restore=args.restore,
        trace_file=args.trace_file,
        trace_sample_rate=args.trace_sample_rate,
        journal_path=None if args.router else args.journal,
        corpus_spec=corpus_spec,
        shard_id=args.shard_index,
        estimator=args.estimator,
        bandit=args.bandit,
        tier_policy=args.tier_policy,
    )
    if args.router:
        return _serve_router(args, corpus_spec, config)
    if fault_plan is not None:
        print(f"fault injection active: {fault_plan.to_dict()}")
    label = (
        f"shard {args.shard_index}/{args.shard_count} of "
        if args.shard_index is not None
        else ""
    )
    print(
        f"serving {label}{len(pool)} tasks with {args.strategy} "
        f"on http://{args.host}:{args.port} (Ctrl-C to stop)"
    )
    try:
        asyncio.run(run_daemon(pool, config))
    except KeyboardInterrupt:
        print("daemon stopped")
    return 0


def _serve_router(args: argparse.Namespace, corpus_spec: dict, config) -> int:
    """``repro serve --router``: the sharded front door.

    Either spawns ``--shards`` local shard processes over disjoint corpus
    slices (each on an ephemeral port) or attaches to external shards named
    by repeated ``--shard-addr``.  ``--journal`` here records the *routing*
    journal; per-shard flight journals go to ``--shard-journal-dir``.
    """
    import asyncio

    from .serve.router import RouterConfig, run_router
    from .serve.shard import ShardSpec, spawn_shard_fleet

    fleet = []
    if args.shard_addr:
        specs = []
        for index, address in enumerate(args.shard_addr):
            host, separator, port_text = address.rpartition(":")
            if not separator or not host:
                print(f"bad --shard-addr {address!r}: want HOST:PORT",
                      file=sys.stderr)
                return 2
            try:
                port = int(port_text)
            except ValueError:
                print(f"bad --shard-addr port {port_text!r}", file=sys.stderr)
                return 2
            specs.append(ShardSpec(index=index, host=host, port=port))
    else:
        if args.shards < 1:
            print("--shards must be >= 1", file=sys.stderr)
            return 2
        fleet = spawn_shard_fleet(
            args.shards, corpus_spec, config,
            journal_dir=args.shard_journal_dir,
        )
        specs = [shard.spec for shard in fleet]
    router_config = RouterConfig(
        host=args.host, port=args.port, journal_path=args.journal
    )
    shards_text = ", ".join(f"{s.index}@{s.host}:{s.port}" for s in specs)
    print(
        f"routing {len(specs)} shard(s) [{shards_text}] "
        f"on http://{args.host}:{args.port} (Ctrl-C to stop)"
    )
    try:
        asyncio.run(run_router(specs, router_config))
    except KeyboardInterrupt:
        print("router stopped")
    finally:
        for shard in fleet:
            shard.stop()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .serve.replay import (
        ReplayError,
        ReplayVariant,
        default_variants,
        load_journal,
        pool_from_corpus_spec,
        replay_differential,
        replay_journal,
    )

    path = Path(args.journal)
    if not path.exists():
        print(f"no such journal: {path}", file=sys.stderr)
        return 2
    with path.open(encoding="utf-8") as handle:
        first_line = handle.readline()
    if '"kind":"routing"' in first_line or '"kind": "routing"' in first_line:
        # A router's routing journal: verify every recorded decision
        # against a rebuilt ring instead of re-driving a daemon.
        from .serve.router import verify_routing_journal

        report = verify_routing_journal(str(path))
        print(json.dumps(report, indent=2, sort_keys=True))
        for divergence in report["divergences"]:
            print(f"routing divergence: {divergence}", file=sys.stderr)
        return 1 if report["divergences"] else 0
    try:
        journal = load_journal(path)
        pool = pool_from_corpus_spec(journal.corpus_spec)
    except ReplayError as exc:
        print(f"cannot replay {path}: {exc}", file=sys.stderr)
        return 2
    try:
        if args.differential:
            reports = replay_differential(
                journal, pool, variants=default_variants(pin_tier=args.pin_tier)
            )
        else:
            label = "engine" if args.engine else "in-loop"
            reports = [
                replay_journal(
                    journal,
                    pool,
                    ReplayVariant(label, engine_semantics=args.engine),
                )
            ]
    except ReplayError as exc:
        print(f"cannot replay {path}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
    # A pinned tier diverging from an adaptively-recorded run is the
    # diagnostic, not a failure; every other variant must match.
    failed = [
        r for r in reports if not r.ok and not r.variant.startswith("pin:")
    ]
    for report in failed:
        print(
            f"divergence [{report.variant}]: {report.divergence.describe()}"
            if report.divergence is not None
            else f"divergence [{report.variant}]: "
                 f"{report.disjointness_violations} disjointness violation(s)",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .serve.tracing import SUMMARY_HEADERS, summarize_trace_file

    path = Path(args.file)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 2
    summary = summarize_trace_file(path)
    if summary.n_traces == 0:
        print(f"{path}: no traces (empty file)")
        return 1 if args.strict else 0
    print(format_table(
        SUMMARY_HEADERS, summary.rows, title=f"per-stage latency · {path.name}"
    ))
    print(
        f"traces: {summary.n_traces}  spans: {summary.n_spans}  "
        f"unclosed roots: {summary.n_unclosed}"
    )
    if args.strict and not summary.clean:
        print(
            f"trace leak: {summary.n_unclosed} root span(s) never closed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_teams(args: argparse.Namespace) -> int:
    from .data import (
        CrowdFlowerConfig,
        generate_crowdflower_corpus,
        generate_online_workers,
    )
    from .teams import (
        TeamInstance,
        collaborative_tasks_from_pool,
        greedy_teams,
        random_teams,
    )

    corpus = generate_crowdflower_corpus(
        CrowdFlowerConfig(n_tasks=max(args.tasks * 10, 40)), rng=args.seed
    )
    workers = generate_online_workers(args.workers, rng=args.seed + 1)
    tasks = collaborative_tasks_from_pool(
        list(corpus.pool)[: args.tasks], args.team_size
    )
    instance = TeamInstance(tasks, workers)
    greedy = greedy_teams(instance)
    random_baseline = random_teams(instance, rng=args.seed)
    print(f"greedy objective : {greedy.objective(instance):.4f}")
    print(f"random objective : {random_baseline.objective(instance):.4f}")
    for task_id, members in greedy.by_task.items():
        print(f"  {task_id}: {', '.join(members)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Bit-packed boolean-matrix kernels.

The pairwise-Jaccard matrix is the serving path's startup and per-solve hot
loop: ``|u & v|`` for every row pair.  The dense path computes it as an
int64 matmul over the ``(n, R)`` boolean matrix — ``O(n m R)`` multiply-adds
that numpy cannot hand to BLAS (integer dtypes take the naive loop).  This
module packs each boolean row into ``ceil(R / 64)`` ``uint64`` words and
computes the same intersection counts as vectorized popcounts over bitwise
ANDs — 64 keyword positions per word op, with ``np.bitwise_count`` where
numpy provides it (>= 2.0) and an 8-bit lookup table otherwise.

Counts are exact integers either way, so the Jaccard distances derived from
them are *bit-identical* to the dense path (the differential suite in
``tests/test_perf_kernels.py`` holds both paths to that).
"""

from __future__ import annotations

import numpy as np

#: Rows per block when materialising the (block, m, words) AND intermediate.
_BLOCK_ROWS = 256

#: Popcount of every byte value; fallback when np.bitwise_count is missing.
_POPCOUNT8 = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of an unsigned-integer array (same shape)."""
    words = np.asarray(words)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    return _POPCOUNT8[words.view(np.uint8)].reshape(
        words.shape + (words.dtype.itemsize,)
    ).sum(axis=-1, dtype=np.uint8)


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack boolean rows into ``uint64`` words, little-endian bit order.

    Returns shape ``(n, ceil(R / 64))``; trailing pad bits are zero, so
    bitwise ANDs between packed rows never invent spurious intersections.

    >>> pack_rows(np.array([[1, 0, 1]], dtype=bool))
    array([[5]], dtype=uint64)
    """
    bits = np.asarray(matrix, dtype=bool)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D boolean matrix, got {bits.ndim}-D")
    n, r = bits.shape
    n_words = (r + 63) // 64
    if n_words == 0:
        return np.zeros((n, 0), dtype=np.uint64)
    packed8 = np.packbits(bits, axis=1, bitorder="little")
    n_bytes = n_words * 8
    if packed8.shape[1] < n_bytes:
        packed8 = np.pad(packed8, ((0, 0), (0, n_bytes - packed8.shape[1])))
    # A row is n_bytes little-endian bytes; viewing as uint64 needs the
    # native byte order to be little-endian, which numpy wheels guarantee on
    # every platform we target — assert rather than silently mis-pack.
    assert np.dtype(np.uint64).byteorder in ("=", "<") and np.little_endian
    return np.ascontiguousarray(packed8).view(np.uint64)


def unpack_rows(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: packed words back to a boolean matrix.

    ``packed`` is a ``(n, ceil(n_bits / 64))`` uint64 matrix; returns the
    ``(n, n_bits)`` boolean matrix it encodes.  Round-trips exactly:
    ``unpack_rows(pack_rows(m), m.shape[1]) == m``.
    """
    words = np.asarray(packed, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected a 2-D packed matrix, got {words.ndim}-D")
    n, n_words = words.shape
    if n_bits < 0 or (n_bits + 63) // 64 != n_words:
        raise ValueError(
            f"n_bits {n_bits} does not fit {n_words} uint64 words"
        )
    if n_bits == 0:
        return np.zeros((n, 0), dtype=bool)
    assert np.dtype(np.uint64).byteorder in ("=", "<") and np.little_endian
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n_bits].astype(bool)


def packed_intersections(
    left: np.ndarray,
    right: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``|u & v|`` for every (left row, right row) pair, as int64.

    ``left``/``right`` are packed matrices from :func:`pack_rows` with the
    same word count.  Blockwise over left rows so the 3-D AND intermediate
    stays small.
    """
    if left.shape[1] != right.shape[1]:
        raise ValueError(
            f"word-count mismatch: {left.shape[1]} vs {right.shape[1]}"
        )
    n, m = left.shape[0], right.shape[0]
    if out is None:
        out = np.empty((n, m), dtype=np.int64)
    if left.shape[1] == 0:
        out[:] = 0
        return out
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        anded = left[start:stop, None, :] & right[None, :, :]
        out[start:stop] = popcount(anded).sum(axis=-1, dtype=np.int64)
    return out


class PackedMatrix:
    """A boolean matrix with its packed words and row popcounts.

    Carried by callers that compute many intersection products against the
    same operand (the diversity cache packs its pool matrix once).
    """

    __slots__ = ("n_rows", "n_bits", "words", "counts")

    def __init__(self, matrix: np.ndarray):
        bits = np.asarray(matrix, dtype=bool)
        self.n_rows, self.n_bits = bits.shape
        self.words = pack_rows(bits)
        self.counts = bits.sum(axis=1, dtype=np.int64)

    def intersections(self, other: "PackedMatrix") -> np.ndarray:
        return packed_intersections(self.words, other.words)

"""Performance kernels for the numeric hot paths.

See :mod:`repro.perf.config` for kernel selection, :mod:`repro.perf.bitpack`
for the bit-packed Jaccard kernel, and :mod:`repro.perf.lsap_kernels` for
the vectorized Hungarian search.
"""

from repro.perf.bitpack import PackedMatrix, pack_rows, packed_intersections, popcount
from repro.perf.config import (
    KERNELS,
    get_kernel,
    reset_kernels,
    resolve_kernel,
    set_kernel,
    use_kernel,
)
from repro.perf.lsap_kernels import hungarian_min_rect

__all__ = [
    "KERNELS",
    "PackedMatrix",
    "get_kernel",
    "hungarian_min_rect",
    "pack_rows",
    "packed_intersections",
    "popcount",
    "reset_kernels",
    "resolve_kernel",
    "set_kernel",
    "use_kernel",
]

"""Kernel selection for the performance-critical numeric paths.

Two hot paths have interchangeable kernels:

* ``"jaccard"`` — the pairwise-Jaccard matrix in :mod:`repro.core.distance`:
  ``"packed"`` (bit-packed uint64 popcounts, :mod:`repro.perf.bitpack`) or
  ``"dense"`` (the original int64-matmul path, kept as the differential
  oracle);
* ``"lsap"`` — the Hungarian solver in :mod:`repro.matching.lsap`:
  ``"vectorized"`` (rectangular-aware augmenting-path search with
  vectorized inner loops, :mod:`repro.perf.lsap_kernels`), ``"warm"``
  (the vectorized kernel with certified dual reuse across consecutive
  solves, :func:`repro.perf.lsap_kernels.hungarian_min_rect_warm`) or
  ``"reference"`` (the original pad-to-square implementation, the oracle).

Both kernels of a domain produce bit-identical float results on square /
well-posed inputs; the differential suite in ``tests/test_perf_kernels.py``
enforces that.  Defaults favour the fast kernels and can be overridden
process-wide via :func:`set_kernel`, per call site via the ``kernel=``
argument the hot functions accept, or at startup via the environment
variables ``REPRO_JACCARD_KERNEL`` / ``REPRO_LSAP_KERNEL``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: domain -> allowed kernel names, fastest (default) first.
KERNELS: dict[str, tuple[str, ...]] = {
    "jaccard": ("packed", "dense"),
    "lsap": ("vectorized", "warm", "reference"),
}

_ENV_VARS = {
    "jaccard": "REPRO_JACCARD_KERNEL",
    "lsap": "REPRO_LSAP_KERNEL",
}

_active: dict[str, str] = {}


def _validate(domain: str, kernel: str) -> str:
    try:
        allowed = KERNELS[domain]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel domain {domain!r}; domains: {known}") from None
    if kernel not in allowed:
        raise ValueError(
            f"unknown {domain} kernel {kernel!r}; available: {', '.join(allowed)}"
        )
    return kernel


def get_kernel(domain: str) -> str:
    """The active kernel for ``domain`` (env override wins over default)."""
    try:
        default = KERNELS[domain][0]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel domain {domain!r}; domains: {known}") from None
    if domain in _active:
        return _active[domain]
    env_value = os.environ.get(_ENV_VARS.get(domain, ""), "")
    if env_value:
        return _validate(domain, env_value)
    return default


def set_kernel(domain: str, kernel: str) -> None:
    """Select ``kernel`` for ``domain`` process-wide."""
    _active[domain] = _validate(domain, kernel)


def reset_kernels() -> None:
    """Drop all process-wide selections (back to env/defaults)."""
    _active.clear()


@contextmanager
def use_kernel(domain: str, kernel: str):
    """Temporarily select a kernel (the differential tests' main tool)."""
    _validate(domain, kernel)
    previous = _active.get(domain)
    _active[domain] = kernel
    try:
        yield
    finally:
        if previous is None:
            _active.pop(domain, None)
        else:
            _active[domain] = previous


def resolve_kernel(domain: str, kernel: str | None) -> str:
    """An explicit per-call choice, falling back to the active kernel."""
    if kernel is None:
        return get_kernel(domain)
    return _validate(domain, kernel)

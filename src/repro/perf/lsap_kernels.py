"""Vectorized Hungarian augmenting-path kernel.

The reference implementation in :mod:`repro.matching.lsap` is the classic
potentials formulation.  It pads rectangular cost matrices to square —
``n_cols`` augmenting-path searches at ``O(n_cols^2)`` each, i.e.
``O(n_cols^3)`` even when only ``n_rows << n_cols`` real rows exist — and
rebuilds the ``used``-column index set with ``np.flatnonzero`` on every step
of the path search.

This kernel keeps the same dual-potential algorithm but

* runs the augmenting-path search directly on the rectangular matrix (one
  augmentation per *real* row, so the padded-row iterations are gone:
  ``O(n_rows^2 n_cols)`` instead of ``O(n_cols^3)``), and
* replaces the per-step Python/index-array bookkeeping with incremental
  state: the visited-column list grows in place and the frontier argmin is a
  single masked ``argmin`` over the column axis.

For square inputs it visits columns in exactly the reference order with the
same first-minimum tie-breaking, so the returned assignment is identical
entry for entry.  For rectangular inputs the assignment *value* equals the
reference (both are optimal); tie-broken column choices may differ, which
the differential suite pins down against ``brute_force_lsap``.

Dual warm starts
----------------

The serving loop re-solves near-identical LSAP instances every tick (the
same worker set against a slightly shrunken candidate pool), which is the
textbook case for reusing the column potentials ``v`` between runs: a good
starting ``v`` makes each augmenting-path search terminate after scanning a
handful of columns.  :func:`hungarian_min_rect_warm` keeps a per-process
:class:`DualCache` of final duals keyed by the active
:func:`warm_context` (the engine sets the batch's worker ids) and
warm-starts the next solve of that stream; cached duals are truncated or
zero-padded when the candidate count changed between ticks.

Reused duals are a *heuristic*: nothing guarantees they are valid
potentials for the new cost matrix, so the warm result is only returned
when a post-solve certificate proves it is the unique optimum — dual
feasibility of the final ``(u, v)``, tightness on every assigned pair, the
matched/unmatched column sign conditions, and exactly one tight entry per
row (unique optimum ⇒ any exact solver returns the same assignment, so
warm output is bit-identical to cold output).  On certificate failure the
cold solver re-runs and *its* answer is returned; after
``_MAX_CONSECUTIVE_FAILURES`` failures in a row the cache entry enters a
cooldown — warm attempts resume only every ``_RETRY_PERIOD`` calls, so
degenerate/tied streams stop paying double while a stream that turns
well-posed again recovers.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

#: Certificate tolerance scale, relative to the cost magnitude.
_EPS_SCALE = 1e-9

#: Consecutive certificate failures after which an entry enters cooldown.
_MAX_CONSECUTIVE_FAILURES = 2

#: While cooling down, probe a warm attempt once every this many calls.
_RETRY_PERIOD = 16


def hungarian_min_rect(
    cost: np.ndarray,
    init_v: "np.ndarray | None" = None,
    return_duals: bool = False,
):
    """Minimum-cost assignment of every row of a rectangular cost matrix.

    Args:
        cost: ``(n_rows, n_cols)`` float matrix with ``n_rows <= n_cols``
            and finite entries (callers validate).
        init_v: Optional warm-start column potentials of length ``n_cols``
            (the ``v`` of a previous solve).  Arbitrary values are safe for
            termination, but only :func:`hungarian_min_rect_warm` should
            pass this — it certifies the result before trusting it.
        return_duals: Also return the final row/column potentials.

    Returns:
        ``row_to_col`` of shape ``(n_rows,)`` — distinct columns minimizing
        the total cost; with ``return_duals``, the tuple
        ``(row_to_col, u, v)`` where ``u``/``v`` are the real (non-virtual)
        potentials of shape ``(n_rows,)`` / ``(n_cols,)``.
    """
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(f"need n_rows <= n_cols, got shape {cost.shape}")
    if n_rows == 0:
        empty = np.empty(0, dtype=np.intp)
        if return_duals:
            return empty, np.empty(0), np.zeros(n_cols)
        return empty
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    if init_v is not None:
        v[1:] = init_v
    p = np.zeros(n_cols + 1, dtype=np.intp)  # column -> matched row (1-based)
    way = np.zeros(n_cols + 1, dtype=np.intp)
    visited = np.empty(n_cols + 1, dtype=np.intp)
    for i in range(1, n_rows + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n_cols + 1, np.inf)
        inner_minv = minv[1:]
        used = np.zeros(n_cols + 1, dtype=bool)
        free = np.ones(n_cols, dtype=bool)
        n_visited = 0
        while True:
            used[j0] = True
            if j0:
                free[j0 - 1] = False
            visited[n_visited] = j0
            n_visited += 1
            i0 = p[j0]
            # Reduced cost of extending the path through column j0's row.
            cur = cost[i0 - 1] - u[i0] - v[1:]
            better = free & (cur < inner_minv)
            inner_minv[better] = cur[better]
            way[1:][better] = j0
            frontier = np.where(free, inner_minv, np.inf)
            j1_offset = int(frontier.argmin())
            delta = frontier[j1_offset]
            # Update potentials: matched part shifts by delta, frontier shrinks.
            path_cols = visited[:n_visited]
            u[p[path_cols]] += delta
            v[path_cols] -= delta
            inner_minv[free] -= delta
            j0 = j1_offset + 1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    row_to_col = np.empty(n_rows, dtype=np.intp)
    matched = np.flatnonzero(p[1:])
    row_to_col[p[1:][matched] - 1] = matched
    if return_duals:
        return row_to_col, u[1:].copy(), v[1:].copy()
    return row_to_col


# -- dual warm starts --------------------------------------------------------


class _DualEntry:
    __slots__ = ("duals", "signature", "failures")

    def __init__(self, duals: np.ndarray, signature: tuple):
        self.duals = duals
        self.signature = signature
        self.failures = 0


class DualCache:
    """Process-local LRU of final column duals, keyed by warm context.

    One entry per context key — the serving engine's context key is the
    batch's worker-id tuple, so consecutive ticks of the same worker set
    warm-start each other while unrelated batches stay apart.  The stored
    duals may come from a different candidate count (pools shrink between
    ticks); :func:`hungarian_min_rect_warm` adapts them by truncation /
    zero-padding.  ``signature`` records the shape they came from.
    """

    def __init__(self, max_entries: int = 64):
        self._max_entries = max_entries
        self._entries: "OrderedDict[tuple, _DualEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.certificate_failures = 0

    def get(self, key: tuple) -> "_DualEntry | None":
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, duals: np.ndarray, signature: tuple) -> None:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _DualEntry(duals, signature)
        else:
            entry.duals = duals
            entry.signature = signature
            self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def note_failure(self, key: tuple) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.failures += 1
        self.certificate_failures += 1

    def note_success(self, key: tuple) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.failures = 0

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.certificate_failures = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "certificate_failures": self.certificate_failures,
        }


_CACHE = DualCache()
_CONTEXT_KEY: "tuple | str | None" = None


@contextmanager
def warm_context(key):
    """Scope the dual cache to one logical solve stream.

    The engine wraps each worker-process solve in the batch's worker-id
    tuple; anything hashable works.  Nested contexts restore the outer key.
    """
    global _CONTEXT_KEY
    previous = _CONTEXT_KEY
    _CONTEXT_KEY = tuple(key) if isinstance(key, (list, tuple)) else key
    try:
        yield
    finally:
        _CONTEXT_KEY = previous


def dual_cache_stats() -> dict:
    """Hit/miss/failure counters of this process's dual cache."""
    return _CACHE.stats()


def reset_dual_cache() -> None:
    """Drop all cached duals and counters (tests)."""
    _CACHE.clear()


def _certified_unique_optimum(
    cost: np.ndarray,
    row_to_col: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> bool:
    """True iff ``(u, v)`` proves ``row_to_col`` is the *unique* optimum.

    For any assignment ``A``:
    ``value(A) - value(W) = sum_A R + sum_{cols(A)\\cols(W)} v
    - sum_{cols(W)\\cols(A)} v`` where ``R = cost - u - v`` and ``W`` is the
    certified assignment (tight on its pairs).  With feasible duals
    satisfying the column sign conditions (``v <= 0`` on matched columns,
    ``v >= 0`` on unmatched) every term is non-negative, so ``W`` is
    optimal.  ``A`` ties ``W`` only when ``A xor W`` decomposes into
    alternating *cycles* of tight edges (the column set is unchanged) and
    alternating *paths* of tight edges whose freed column and newly taken
    column both have ``v ~= 0``; if the tight graph contains neither, the
    optimum is unique and a cold solver provably returns ``row_to_col``
    itself.

    Warm-run duals routinely violate the sign conditions even when the
    assignment is right — leftover negative potentials from the previous
    tick stick to columns that end up unmatched.  Both violations are
    repairable without touching the assignment: a matched column's excess
    ``v`` shifts into its row's ``u`` (tightness of the assigned pair is
    preserved), and an unmatched negative ``v`` is raised to zero; the
    feasibility re-check below then validates the *repaired* duals, which
    satisfy the sign conditions by construction.
    """
    n_rows, n_cols = cost.shape
    eps = _EPS_SCALE * max(1.0, float(np.abs(cost).max()))
    u = u.copy()
    v = v.copy()
    rows = np.arange(n_rows)
    matched = np.zeros(n_cols, dtype=bool)
    matched[row_to_col] = True
    # Repair: move matched columns' positive v into their rows' u ...
    excess = np.maximum(v[row_to_col], 0.0)
    u += excess
    v[row_to_col] -= excess
    # ... and lift unmatched columns' negative v to zero.
    v[~matched] = np.maximum(v[~matched], 0.0)
    reduced = cost - u[:, None] - v[None, :]
    if float(reduced.min()) < -eps:
        return False  # repaired duals not feasible
    if float(np.abs(reduced[rows, row_to_col]).max()) > eps:
        return False  # assigned pairs not tight
    tight = reduced <= eps
    # Row digraph: i -> i' when row i has a tight edge into i''s column
    # (row i could steal it, forcing i' to move on).
    adjacency = tight[:, row_to_col]
    np.fill_diagonal(adjacency, False)
    # An alternating path ties W only if it frees a matched column with
    # v ~= 0 (entry) and ends on an unmatched tight column with v ~= 0
    # (exit); an alternating cycle always ties W.
    entry = v[row_to_col] >= -eps
    exit_cols = ~matched & (v <= eps)
    exits = (tight[:, exit_cols]).any(axis=1) if exit_cols.any() else np.zeros(
        n_rows, dtype=bool
    )
    if (entry & exits).any():
        return False
    # BFS forward from entry rows; reaching an exit row ties W.
    frontier = entry.copy()
    seen = entry.copy()
    while frontier.any():
        nxt = adjacency[frontier].any(axis=0) & ~seen
        if (nxt & exits).any():
            return False
        seen |= nxt
        frontier = nxt
    # Cycle detection on the tight digraph (iterative Kahn peeling).
    alive = np.ones(n_rows, dtype=bool)
    while True:
        indegree = adjacency[alive][:, alive].sum(axis=0)
        leaves = np.flatnonzero(alive)[indegree == 0]
        outdeg_zero = np.flatnonzero(alive)[
            ~adjacency[alive][:, alive].any(axis=1)
        ]
        drop = np.union1d(leaves, outdeg_zero)
        if drop.size == 0:
            break
        alive[drop] = False
        if not alive.any():
            break
    return not alive.any()


def hungarian_min_rect_warm(cost: np.ndarray) -> np.ndarray:
    """:func:`hungarian_min_rect` with dual reuse across consecutive solves.

    Warm-starts from the cached duals of the active :func:`warm_context`
    (same column count); the result is returned only when the certificate
    proves it bit-identical to a cold solve, otherwise the cold solver
    re-runs and its answer is returned — callers can never observe a
    warm-start artifact.
    """
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(f"need n_rows <= n_cols, got shape {cost.shape}")
    if n_rows == 0:
        return np.empty(0, dtype=np.intp)
    key = _CONTEXT_KEY
    entry = _CACHE.get(key)
    attempt = entry is not None and (
        entry.failures < _MAX_CONSECUTIVE_FAILURES
        or entry.failures % _RETRY_PERIOD == 0
    )
    if attempt:
        init_v = entry.duals
        if len(init_v) >= n_cols:
            init_v = init_v[:n_cols]
        else:
            init_v = np.concatenate([init_v, np.zeros(n_cols - len(init_v))])
        row_to_col, u, v = hungarian_min_rect(cost, init_v=init_v, return_duals=True)
        if _certified_unique_optimum(cost, row_to_col, u, v):
            _CACHE.put(key, v, (n_rows, n_cols))
            _CACHE.note_success(key)
            _CACHE.hits += 1
            return row_to_col
        _CACHE.note_failure(key)
    else:
        if entry is not None:
            entry.failures += 1  # advance the cooldown probe counter
        _CACHE.misses += 1
    row_to_col, u, v = hungarian_min_rect(cost, return_duals=True)
    _CACHE.put(key, v, (n_rows, n_cols))
    return row_to_col

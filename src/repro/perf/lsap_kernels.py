"""Vectorized Hungarian augmenting-path kernel.

The reference implementation in :mod:`repro.matching.lsap` is the classic
potentials formulation.  It pads rectangular cost matrices to square —
``n_cols`` augmenting-path searches at ``O(n_cols^2)`` each, i.e.
``O(n_cols^3)`` even when only ``n_rows << n_cols`` real rows exist — and
rebuilds the ``used``-column index set with ``np.flatnonzero`` on every step
of the path search.

This kernel keeps the same dual-potential algorithm but

* runs the augmenting-path search directly on the rectangular matrix (one
  augmentation per *real* row, so the padded-row iterations are gone:
  ``O(n_rows^2 n_cols)`` instead of ``O(n_cols^3)``), and
* replaces the per-step Python/index-array bookkeeping with incremental
  state: the visited-column list grows in place and the frontier argmin is a
  single masked ``argmin`` over the column axis.

For square inputs it visits columns in exactly the reference order with the
same first-minimum tie-breaking, so the returned assignment is identical
entry for entry.  For rectangular inputs the assignment *value* equals the
reference (both are optimal); tie-broken column choices may differ, which
the differential suite pins down against ``brute_force_lsap``.
"""

from __future__ import annotations

import numpy as np


def hungarian_min_rect(cost: np.ndarray) -> np.ndarray:
    """Minimum-cost assignment of every row of a rectangular cost matrix.

    Args:
        cost: ``(n_rows, n_cols)`` float matrix with ``n_rows <= n_cols``
            and finite entries (callers validate).

    Returns:
        ``row_to_col`` of shape ``(n_rows,)`` — distinct columns minimizing
        the total cost.
    """
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(f"need n_rows <= n_cols, got shape {cost.shape}")
    if n_rows == 0:
        return np.empty(0, dtype=np.intp)
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    p = np.zeros(n_cols + 1, dtype=np.intp)  # column -> matched row (1-based)
    way = np.zeros(n_cols + 1, dtype=np.intp)
    visited = np.empty(n_cols + 1, dtype=np.intp)
    for i in range(1, n_rows + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n_cols + 1, np.inf)
        inner_minv = minv[1:]
        used = np.zeros(n_cols + 1, dtype=bool)
        free = np.ones(n_cols, dtype=bool)
        n_visited = 0
        while True:
            used[j0] = True
            if j0:
                free[j0 - 1] = False
            visited[n_visited] = j0
            n_visited += 1
            i0 = p[j0]
            # Reduced cost of extending the path through column j0's row.
            cur = cost[i0 - 1] - u[i0] - v[1:]
            better = free & (cur < inner_minv)
            inner_minv[better] = cur[better]
            way[1:][better] = j0
            frontier = np.where(free, inner_minv, np.inf)
            j1_offset = int(frontier.argmin())
            delta = frontier[j1_offset]
            # Update potentials: matched part shifts by delta, frontier shrinks.
            path_cols = visited[:n_visited]
            u[p[path_cols]] += delta
            v[path_cols] -= delta
            inner_minv[free] -= delta
            j0 = j1_offset + 1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    row_to_col = np.empty(n_rows, dtype=np.intp)
    matched = np.flatnonzero(p[1:])
    row_to_col[p[1:][matched] - 1] = matched
    return row_to_col

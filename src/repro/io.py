"""JSON serialization for the library's value objects.

Round-trips vocabularies, task/worker pools, HTA instances, assignments,
and deployment summaries to plain JSON so experiments can be checkpointed,
diffed, and replayed across sessions.  Keyword vectors are stored as
keyword-name lists (stable across vocabulary reorderings is *not*
guaranteed — the vocabulary itself is part of the document).

Top-level helpers: :func:`dump` / :func:`load` dispatch on a ``"kind"``
discriminator, so one file format covers every object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core.assignment import Assignment
from .core.distance import DistanceSpec
from .core.instance import HTAInstance
from .core.keywords import Vocabulary
from .core.task import Task, TaskPool
from .core.worker import MotivationWeights, Worker, WorkerPool
from .errors import ReproError


class SerializationError(ReproError):
    """A document could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# Encoders.
# ---------------------------------------------------------------------------


def vocabulary_to_dict(vocabulary: Vocabulary) -> dict[str, Any]:
    return {"kind": "vocabulary", "keywords": list(vocabulary.keywords)}


def task_to_dict(task: Task, vocabulary: Vocabulary) -> dict[str, Any]:
    return {
        "task_id": task.task_id,
        "keywords": list(task.keywords(vocabulary)),
        "group": task.group,
        "title": task.title,
        "reward": task.reward,
        "n_questions": task.n_questions,
    }


def task_pool_to_dict(pool: TaskPool) -> dict[str, Any]:
    return {
        "kind": "task_pool",
        "vocabulary": vocabulary_to_dict(pool.vocabulary),
        "tasks": [task_to_dict(t, pool.vocabulary) for t in pool],
    }


def worker_to_dict(worker: Worker, vocabulary: Vocabulary) -> dict[str, Any]:
    return {
        "worker_id": worker.worker_id,
        "keywords": list(worker.keywords(vocabulary)),
        "alpha": worker.alpha,
        "beta": worker.beta,
    }


def worker_pool_to_dict(pool: WorkerPool) -> dict[str, Any]:
    return {
        "kind": "worker_pool",
        "vocabulary": vocabulary_to_dict(pool.vocabulary),
        "workers": [worker_to_dict(w, pool.vocabulary) for w in pool],
    }


def instance_to_dict(instance: HTAInstance) -> dict[str, Any]:
    return {
        "kind": "hta_instance",
        "x_max": instance.x_max,
        "distance": instance.distance.name,
        "tasks": task_pool_to_dict(instance.tasks),
        "workers": worker_pool_to_dict(instance.workers),
    }


def assignment_to_dict(assignment: Assignment) -> dict[str, Any]:
    return {
        "kind": "assignment",
        "by_worker": {w: list(ts) for w, ts in assignment.by_worker.items()},
    }


# ---------------------------------------------------------------------------
# Decoders.
# ---------------------------------------------------------------------------


def vocabulary_from_dict(document: dict[str, Any]) -> Vocabulary:
    _expect_kind(document, "vocabulary")
    return Vocabulary(document["keywords"])


def task_pool_from_dict(document: dict[str, Any]) -> TaskPool:
    _expect_kind(document, "task_pool")
    vocabulary = vocabulary_from_dict(document["vocabulary"])
    tasks = []
    for entry in document["tasks"]:
        tasks.append(
            Task(
                task_id=entry["task_id"],
                vector=vocabulary.encode(entry["keywords"]),
                group=entry.get("group", ""),
                title=entry.get("title", ""),
                reward=entry.get("reward", 0.05),
                n_questions=entry.get("n_questions", 1),
            )
        )
    return TaskPool(tasks, vocabulary)


def worker_pool_from_dict(document: dict[str, Any]) -> WorkerPool:
    _expect_kind(document, "worker_pool")
    vocabulary = vocabulary_from_dict(document["vocabulary"])
    workers = []
    for entry in document["workers"]:
        workers.append(
            Worker(
                worker_id=entry["worker_id"],
                vector=vocabulary.encode(entry["keywords"]),
                weights=MotivationWeights(entry["alpha"], entry["beta"]),
            )
        )
    return WorkerPool(workers, vocabulary)


def instance_from_dict(document: dict[str, Any]) -> HTAInstance:
    _expect_kind(document, "hta_instance")
    return HTAInstance(
        tasks=task_pool_from_dict(document["tasks"]),
        workers=worker_pool_from_dict(document["workers"]),
        x_max=document["x_max"],
        distance=DistanceSpec(document.get("distance", "jaccard")),
    )


def assignment_from_dict(document: dict[str, Any]) -> Assignment:
    _expect_kind(document, "assignment")
    return Assignment(
        {w: tuple(ts) for w, ts in document["by_worker"].items()}
    )


# ---------------------------------------------------------------------------
# Top-level dispatch.
# ---------------------------------------------------------------------------

_ENCODERS = {
    Vocabulary: vocabulary_to_dict,
    TaskPool: task_pool_to_dict,
    WorkerPool: worker_pool_to_dict,
    HTAInstance: instance_to_dict,
    Assignment: assignment_to_dict,
}

_DECODERS = {
    "vocabulary": vocabulary_from_dict,
    "task_pool": task_pool_from_dict,
    "worker_pool": worker_pool_from_dict,
    "hta_instance": instance_from_dict,
    "assignment": assignment_from_dict,
}


def to_dict(obj: object) -> dict[str, Any]:
    """Encode any supported object to a JSON-compatible dict."""
    for cls, encoder in _ENCODERS.items():
        if isinstance(obj, cls):
            return encoder(obj)
    raise SerializationError(f"cannot serialize objects of type {type(obj).__name__}")


def from_dict(document: dict[str, Any]) -> object:
    """Decode a dict produced by :func:`to_dict`."""
    kind = document.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        known = ", ".join(sorted(_DECODERS))
        raise SerializationError(f"unknown document kind {kind!r}; known: {known}")
    return decoder(document)


def dump(obj: object, path: str | Path) -> None:
    """Serialize ``obj`` to a JSON file."""
    document = to_dict(obj)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load(path: str | Path) -> object:
    """Load an object previously written by :func:`dump`."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(document)


def _expect_kind(document: dict[str, Any], kind: str) -> None:
    got = document.get("kind")
    if got != kind:
        raise SerializationError(f"expected a {kind!r} document, got {got!r}")

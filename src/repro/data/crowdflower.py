"""Synthetic CrowdFlower-style micro-task corpus (online experiment, Sec. V-C).

The paper used 158,018 CrowdFlower micro-tasks of 22 kinds (tweet
classification, web search, image transcription, sentiment analysis, entity
resolution, news extraction, ...), each kind carrying descriptive keywords
and a reward in $0.01-$0.12, with ground truth available for a sample of
questions.

This generator produces the equivalent: one kind per theme in
:data:`repro.data.vocabulary.THEMES` (22 kinds), per-kind keyword vectors
with light jitter, 1-3 questions per task, and a hidden ground-truth answer
per question.  Ground truth is what the simulated worker's answer is graded
against in the quality metric (Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.keywords import Vocabulary
from ..core.task import Task, TaskPool
from ..rng import ensure_rng
from .vocabulary import SHARED_KEYWORDS, THEMES, default_vocabulary


@dataclass(frozen=True)
class CrowdFlowerConfig:
    """Knobs of the synthetic CrowdFlower corpus.

    Attributes:
        n_tasks: Total micro-tasks to generate (spread over the 22 kinds).
        max_questions: Max questions per task (uniform in 1..max).
        ground_truth_fraction: Fraction of questions with known ground truth
            (the paper graded a 1,137-question sample out of 4,473).
        jitter: Per-task probability of flipping one keyword.
        reward_range: Reward range in dollars ($0.01-$0.12 in the paper).
    """

    n_tasks: int
    max_questions: int = 3
    ground_truth_fraction: float = 0.25
    jitter: float = 0.1
    reward_range: tuple[float, float] = (0.01, 0.12)

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.max_questions < 1:
            raise ValueError(f"max_questions must be >= 1, got {self.max_questions}")
        if not 0.0 <= self.ground_truth_fraction <= 1.0:
            raise ValueError("ground_truth_fraction must be in [0, 1]")


@dataclass(frozen=True)
class CrowdFlowerCorpus:
    """The generated corpus.

    Attributes:
        pool: All tasks as a :class:`TaskPool`.
        kind_of_task: Task id -> kind (theme) name.
        graded_questions: Task id -> number of its questions that have ground
            truth (gradeable); the remaining questions are ungraded, as in
            the paper where only a sample had ground truth.
    """

    pool: TaskPool
    kind_of_task: dict[str, str]
    graded_questions: dict[str, int]

    @property
    def n_kinds(self) -> int:
        return len(set(self.kind_of_task.values()))

    def total_questions(self) -> int:
        return sum(task.n_questions for task in self.pool)

    def total_graded(self) -> int:
        return sum(self.graded_questions.values())


def generate_crowdflower_corpus(
    config: CrowdFlowerConfig,
    vocabulary: Vocabulary | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> CrowdFlowerCorpus:
    """Generate the synthetic corpus."""
    generator = ensure_rng(rng)
    vocab = vocabulary or default_vocabulary()
    kinds = list(THEMES.items())
    shared = [w for w in SHARED_KEYWORDS if w in vocab]

    # Pre-draw each kind's keyword signature once (all tasks of one kind on
    # CrowdFlower share the same job-level keywords).
    signatures: dict[str, np.ndarray] = {}
    for kind_name, kind_keywords in kinds:
        usable = [w for w in kind_keywords if w in vocab]
        words = list(usable)
        if shared:
            n_shared = min(2, len(shared))
            words.extend(generator.choice(shared, size=n_shared, replace=False))
        signatures[kind_name] = vocab.encode(words)

    tasks: list[Task] = []
    kind_of_task: dict[str, str] = {}
    graded: dict[str, int] = {}
    for i in range(config.n_tasks):
        kind_name = kinds[int(generator.integers(len(kinds)))][0]
        vector = signatures[kind_name].copy()
        if config.jitter and generator.random() < config.jitter:
            flip = int(generator.integers(len(vocab)))
            vector[flip] = ~vector[flip]
        n_questions = int(generator.integers(1, config.max_questions + 1))
        n_graded = int(
            (generator.random(n_questions) < config.ground_truth_fraction).sum()
        )
        task_id = f"cf{i}"
        tasks.append(
            Task(
                task_id=task_id,
                vector=vector,
                group=kind_name,
                title=f"{kind_name.replace('_', ' ')} task {i}",
                reward=round(float(generator.uniform(*config.reward_range)), 2),
                n_questions=n_questions,
            )
        )
        kind_of_task[task_id] = kind_name
        graded[task_id] = n_graded

    return CrowdFlowerCorpus(
        pool=TaskPool(tasks, vocab),
        kind_of_task=kind_of_task,
        graded_questions=graded,
    )

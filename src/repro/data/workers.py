"""Synthetic workers.

Two flavours, matching the paper's two experimental settings:

* **offline workers** (Section V-B): five uniformly random interest keywords
  and random ``(alpha, beta)`` — the paper simulates a *previous* iteration
  having already estimated the weights;
* **online workers** (Section V-C): the paper asked real workers to pick at
  least six keywords; here each synthetic worker samples a couple of
  favourite task kinds (themes) plus some shared keywords, which produces the
  clustered interest profiles real workers exhibit.  Latent behavioural
  parameters live in :mod:`repro.crowd.behavior`, not here.
"""

from __future__ import annotations

import numpy as np

from ..core.keywords import Vocabulary
from ..core.worker import MotivationWeights, Worker, WorkerPool
from ..rng import ensure_rng
from .vocabulary import SHARED_KEYWORDS, THEMES, default_vocabulary


def generate_offline_workers(
    n_workers: int,
    vocabulary: Vocabulary | None = None,
    n_keywords: int = 5,
    rng: "int | np.random.Generator | None" = None,
) -> WorkerPool:
    """Workers with ``n_keywords`` uniform random keywords and random weights.

    Mirrors the paper's offline setup: "for each worker, we use a
    pseudo-random uniform generator to choose five keywords [and] pick a
    random alpha and beta in [0, 1]".
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    generator = ensure_rng(rng)
    vocab = vocabulary or default_vocabulary()
    if n_keywords > len(vocab):
        raise ValueError(
            f"n_keywords={n_keywords} exceeds vocabulary size {len(vocab)}"
        )
    workers = []
    for q in range(n_workers):
        positions = generator.choice(len(vocab), size=n_keywords, replace=False)
        vector = np.zeros(len(vocab), dtype=bool)
        vector[positions] = True
        alpha = float(generator.random())
        workers.append(
            Worker(
                worker_id=f"w{q}",
                vector=vector,
                weights=MotivationWeights(alpha, 1.0 - alpha),
            )
        )
    return WorkerPool(workers, vocab)


def generate_online_workers(
    n_workers: int,
    vocabulary: Vocabulary | None = None,
    n_favourite_kinds: int = 1,
    min_keywords: int = 6,
    rng: "int | np.random.Generator | None" = None,
) -> WorkerPool:
    """Workers with clustered interests, as elicited on the real platform.

    Each worker picks ``n_favourite_kinds`` themes, adopts their signature
    keywords, and tops up with shared keywords until reaching at least
    ``min_keywords`` (the paper's sign-up form required six).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    generator = ensure_rng(rng)
    vocab = vocabulary or default_vocabulary()
    theme_list = list(THEMES.values())
    shared = [w for w in SHARED_KEYWORDS if w in vocab]

    workers = []
    for q in range(n_workers):
        picks = generator.choice(
            len(theme_list), size=min(n_favourite_kinds, len(theme_list)), replace=False
        )
        words = {w for p in picks for w in theme_list[p] if w in vocab}
        extra = [w for w in shared if w not in words]
        while len(words) < min_keywords and extra:
            choice = extra.pop(int(generator.integers(len(extra))))
            words.add(choice)
        workers.append(
            Worker(
                worker_id=f"w{q}",
                vector=vocab.encode(words),
                weights=MotivationWeights.balanced(),
            )
        )
    return WorkerPool(workers, vocab)

"""Synthetic AMT-style task-group corpus (offline experiments, Section V-B).

The paper crawled 152,221 AMT task groups, each carrying id, title, reward,
requester, and keywords, and swept two knobs: the number of task groups and
the number of tasks per group (``#groups x #tasks_per_group = |T|``).

This generator reproduces the *structure* the experiments consume:

* every group draws a theme and a small keyword set (theme signature plus a
  couple of shared keywords), so tasks within a group are near-duplicates
  (low pairwise diversity) while tasks across groups are far apart;
* per-task keyword jitter (a keyword dropped or added with small
  probability) keeps intra-group diversity non-zero, as on the real AMT
  where HITs of one group differ slightly.

The sweep of Fig. 3 ("effect of task diversity") varies #groups at fixed
``|T|``: more groups = more diverse profit values, which is exactly what the
generator controls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.keywords import Vocabulary
from ..core.task import Task, TaskGroup, TaskPool
from ..rng import ensure_rng
from .vocabulary import SHARED_KEYWORDS, THEMES, default_vocabulary


@dataclass(frozen=True)
class AMTConfig:
    """Knobs of the synthetic AMT corpus.

    Attributes:
        n_groups: Number of task groups.
        tasks_per_group: Tasks in each group (the mean, under "powerlaw").
        shared_keywords_per_group: Shared (cross-theme) keywords per group.
        jitter: Probability that a task flips one of its group's keywords.
        reward_range: Uniform micro-task reward range in dollars.
        size_distribution: ``"uniform"`` gives every group exactly
            ``tasks_per_group`` tasks (the paper's controlled sweeps);
            ``"powerlaw"`` draws Zipf-like sizes with the same *total* task
            count — the shape of the real AMT crawl, where a few requesters
            post huge batches and most groups are tiny.
    """

    n_groups: int
    tasks_per_group: int
    shared_keywords_per_group: int = 2
    jitter: float = 0.15
    reward_range: tuple[float, float] = (0.01, 0.15)
    size_distribution: str = "uniform"

    def __post_init__(self) -> None:
        if self.n_groups < 1 or self.tasks_per_group < 1:
            raise ValueError("n_groups and tasks_per_group must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.size_distribution not in ("uniform", "powerlaw"):
            raise ValueError(
                f"size_distribution must be 'uniform' or 'powerlaw', "
                f"got {self.size_distribution!r}"
            )


def generate_amt_pool(
    config: AMTConfig,
    vocabulary: Vocabulary | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> TaskPool:
    """Generate a task pool of ``n_groups * tasks_per_group`` tasks."""
    groups = generate_amt_groups(config, vocabulary, rng)
    vocab = vocabulary or default_vocabulary()
    return TaskPool((task for group in groups for task in group), vocab)


def generate_amt_groups(
    config: AMTConfig,
    vocabulary: Vocabulary | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> list[TaskGroup]:
    """Generate the corpus as explicit :class:`TaskGroup` objects."""
    generator = ensure_rng(rng)
    vocab = vocabulary or default_vocabulary()
    theme_list = list(THEMES.items())
    shared = [w for w in SHARED_KEYWORDS if w in vocab]
    group_sizes = _draw_group_sizes(config, generator)

    groups: list[TaskGroup] = []
    for g in range(config.n_groups):
        theme_name, theme_keywords = theme_list[
            int(generator.integers(len(theme_list)))
        ]
        usable = [w for w in theme_keywords if w in vocab]
        n_signature = int(generator.integers(2, len(usable) + 1)) if len(usable) > 2 else len(usable)
        signature = list(
            generator.choice(usable, size=n_signature, replace=False)
        )
        if shared and config.shared_keywords_per_group:
            n_shared = min(config.shared_keywords_per_group, len(shared))
            signature.extend(generator.choice(shared, size=n_shared, replace=False))
        base_vector = vocab.encode(signature)
        reward = float(generator.uniform(*config.reward_range))

        tasks = []
        for t in range(group_sizes[g]):
            vector = base_vector.copy()
            if config.jitter and generator.random() < config.jitter:
                flip = int(generator.integers(len(vocab)))
                vector[flip] = ~vector[flip]
            tasks.append(
                Task(
                    task_id=f"g{g}-t{t}",
                    vector=vector,
                    group=f"group-{g}",
                    title=f"{theme_name.replace('_', ' ')} #{g}.{t}",
                    reward=round(reward, 2),
                )
            )
        groups.append(TaskGroup(name=f"group-{g}", tasks=tuple(tasks)))
    return groups


def _draw_group_sizes(config: AMTConfig, rng: np.random.Generator) -> list[int]:
    """Per-group task counts summing to ``n_groups * tasks_per_group``."""
    total = config.n_groups * config.tasks_per_group
    if config.size_distribution == "uniform":
        return [config.tasks_per_group] * config.n_groups
    # Zipf-like shares: group g gets a share proportional to 1 / rank, with
    # ranks shuffled so group ids carry no size information; every group
    # keeps at least one task and leftovers go to the largest groups.
    ranks = rng.permutation(config.n_groups) + 1
    shares = 1.0 / ranks
    shares /= shares.sum()
    sizes = np.maximum(1, np.floor(shares * total).astype(int))
    deficit = total - int(sizes.sum())
    order = np.argsort(-shares)
    i = 0
    while deficit != 0:
        target = int(order[i % config.n_groups])
        if deficit > 0:
            sizes[target] += 1
            deficit -= 1
        elif sizes[target] > 1:
            sizes[target] -= 1
            deficit += 1
        i += 1
    return [int(s) for s in sizes]

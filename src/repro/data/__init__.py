"""Synthetic workloads standing in for the paper's AMT/CrowdFlower corpora."""

from .amt import AMTConfig, generate_amt_groups, generate_amt_pool
from .crowdflower import (
    CrowdFlowerConfig,
    CrowdFlowerCorpus,
    generate_crowdflower_corpus,
)
from .vocabulary import SHARED_KEYWORDS, THEMES, default_vocabulary, theme_names
from .workers import generate_offline_workers, generate_online_workers

__all__ = [
    "AMTConfig",
    "CrowdFlowerConfig",
    "CrowdFlowerCorpus",
    "SHARED_KEYWORDS",
    "THEMES",
    "default_vocabulary",
    "generate_amt_groups",
    "generate_amt_pool",
    "generate_crowdflower_corpus",
    "generate_offline_workers",
    "generate_online_workers",
    "theme_names",
]

"""Realistic keyword vocabularies for the synthetic workloads.

The paper's examples cite keywords like "audio", "English", "news" (AMT) and
"sentiment analysis", "English" (CrowdFlower).  We model the keyword space as
a set of *themes* (task domains) each bringing a handful of signature
keywords, plus a shared pool of qualification keywords that cut across
themes — this reproduces the co-occurrence structure that makes intra-group
diversity low and inter-group diversity high.
"""

from __future__ import annotations

from ..core.keywords import Vocabulary

#: Task-domain themes with their signature keywords (style of AMT/CF tags).
THEMES: dict[str, tuple[str, ...]] = {
    "audio_transcription": ("audio", "transcription", "listening", "recording"),
    "video_tagging": ("video", "tagging", "street view", "annotation"),
    "sentiment_analysis": ("sentiment analysis", "opinion", "tweets", "polarity"),
    "image_labeling": ("image", "labeling", "photos", "categorize"),
    "web_search": ("search", "web", "information finding", "query"),
    "data_entry": ("data entry", "typing", "spreadsheet", "copy"),
    "entity_resolution": ("entity resolution", "matching", "records", "dedup"),
    "survey": ("survey", "questionnaire", "demographics", "feedback"),
    "content_moderation": ("moderation", "adult content", "flagging", "review"),
    "translation": ("translation", "bilingual", "localization", "proofreading"),
    "ocr_verification": ("ocr", "receipts", "verification", "documents"),
    "product_categorization": ("products", "e-commerce", "taxonomy", "shopping"),
    "news_extraction": ("news", "articles", "extraction", "events"),
    "map_validation": ("maps", "geography", "addresses", "validation"),
    "speech_rating": ("speech", "pronunciation", "rating", "quality"),
    "relevance_judgment": ("relevance", "ranking", "judgment", "pairs"),
    "twitter_classification": ("twitter", "classification", "social media", "hashtags"),
    "medical_coding": ("medical", "coding", "symptoms", "health"),
    "handwriting": ("handwriting", "cursive", "digitization", "forms"),
    "logo_design_feedback": ("logo", "design", "feedback", "aesthetics"),
    "price_comparison": ("prices", "comparison", "retail", "offers"),
    "text_summarization": ("summarization", "writing", "condense", "editing"),
}

#: Cross-cutting qualification keywords (language skills, generic abilities).
SHARED_KEYWORDS: tuple[str, ...] = (
    "english",
    "spanish",
    "french",
    "attention to detail",
    "fast",
    "easy",
    "fun",
    "research",
    "mobile friendly",
    "qualification required",
)


def default_vocabulary() -> Vocabulary:
    """The full keyword vocabulary: every theme keyword plus shared ones."""
    words: dict[str, None] = {}
    for theme_keywords in THEMES.values():
        for word in theme_keywords:
            words[word] = None  # themes may share a keyword; keep the first
    for word in SHARED_KEYWORDS:
        words[word] = None
    return Vocabulary(words)


def theme_names() -> tuple[str, ...]:
    """The 22 task-kind names (matches the paper's 22 CrowdFlower kinds)."""
    return tuple(THEMES)

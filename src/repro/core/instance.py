"""HTA problem instances.

An :class:`HTAInstance` bundles the inputs of Problem 1 — available tasks
``T^i``, available workers ``W^i`` (with their current alpha/beta), and the
per-worker capacity ``Xmax`` — together with the two precomputed matrices
every solver needs:

* ``diversity``: ``(n_tasks, n_tasks)`` pairwise task distances, and
* ``relevance``: ``(n_workers, n_tasks)`` worker-task relevances
  (``rel(t, w) = 1 - d_rel(t, w)``).

Matrices are computed once at construction, so repeated solver runs on the
same instance (e.g. when benchmarking) pay the distance cost only once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import InvalidInstanceError
from .distance import DistanceSpec
from .task import TaskPool
from .worker import WorkerPool


@dataclass(frozen=True)
class HTAInstance:
    """One iteration's holistic task-assignment problem.

    Attributes:
        tasks: The available tasks ``T^i``.
        workers: The available workers ``W^i`` (alphas/betas included).
        x_max: Capacity per worker (constraint C1); the paper's ``Xmax``.
        distance: Distance used for both diversity and relevance (default
            Jaccard, as in the paper).
    """

    tasks: TaskPool
    workers: WorkerPool
    x_max: int
    distance: DistanceSpec = DistanceSpec("jaccard")

    def __post_init__(self) -> None:
        if self.x_max < 1:
            raise InvalidInstanceError(f"x_max must be >= 1, got {self.x_max}")
        if self.tasks.vocabulary != self.workers.vocabulary:
            raise InvalidInstanceError(
                "tasks and workers must share one vocabulary"
            )

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def capacity(self) -> int:
        """Total number of assignable task slots, ``|W| * Xmax``."""
        return self.n_workers * self.x_max

    @cached_property
    def diversity(self) -> np.ndarray:
        """Pairwise task-diversity matrix ``d(t_k, t_l)``, shape ``(n, n)``."""
        return self.distance.matrix(self.tasks.matrix)

    @cached_property
    def relevance(self) -> np.ndarray:
        """Worker-task relevance matrix, shape ``(n_workers, n_tasks)``."""
        return 1.0 - self.distance.matrix(self.workers.matrix, self.tasks.matrix)

    def prime(
        self,
        diversity: np.ndarray | None = None,
        relevance: np.ndarray | None = None,
    ) -> "HTAInstance":
        """Seed the cached matrices with externally precomputed values.

        The serving layer maintains an incremental pairwise-diversity cache
        across assignment iterations (tasks only ever leave the pool), so a
        per-solve instance can reuse a carved submatrix instead of paying the
        from-scratch ``O(n^2 R)`` recomputation.  Shapes are validated; values
        are trusted.  Returns ``self`` for chaining.
        """
        if diversity is not None:
            diversity = np.asarray(diversity, dtype=np.float64)
            if diversity.shape != (self.n_tasks, self.n_tasks):
                raise InvalidInstanceError(
                    f"primed diversity must have shape "
                    f"({self.n_tasks}, {self.n_tasks}), got {diversity.shape}"
                )
            self.__dict__["diversity"] = diversity
        if relevance is not None:
            relevance = np.asarray(relevance, dtype=np.float64)
            if relevance.shape != (self.n_workers, self.n_tasks):
                raise InvalidInstanceError(
                    f"primed relevance must have shape "
                    f"({self.n_workers}, {self.n_tasks}), got {relevance.shape}"
                )
            self.__dict__["relevance"] = relevance
        return self

    def alphas(self) -> np.ndarray:
        return self.workers.alphas

    def betas(self) -> np.ndarray:
        return self.workers.betas

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"HTAInstance({self.n_tasks} tasks, {self.n_workers} workers, "
            f"x_max={self.x_max}, distance={self.distance.name})"
        )

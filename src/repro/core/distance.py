"""Metric distances between keyword vectors.

The paper measures pairwise task diversity with the Jaccard distance
``d(t_k, t_l) = 1 - J(t_k, t_l)`` and allows any distance that is a metric
(triangle inequality is required by the HTA-GRE approximation proof,
Appendix A).  This module provides:

* several metric distances over boolean vectors,
* vectorized pairwise-matrix computation (blockwise, so a few thousand tasks
  fit comfortably in memory),
* a sampling-based metric-property checker used by the test suite and by
  :func:`get_distance` at registration time for custom distances.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import NotAMetricError
from ..perf import bitpack
from ..perf.config import resolve_kernel

DistanceFn = Callable[[np.ndarray, np.ndarray], float]

#: Rows per block in the pairwise-matrix computation.  512 keeps the per-block
#: intermediate (block x n x r for booleans) small even for wide vocabularies.
_BLOCK_ROWS = 512


def jaccard_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Jaccard distance between two boolean vectors.

    Defined as ``1 - |u & v| / |u | v|``; two all-false vectors are identical,
    so their distance is 0 (the standard convention that keeps Jaccard a
    metric).

    >>> jaccard_distance(np.array([1, 1, 0], bool), np.array([0, 1, 1], bool))
    0.6666666666666667
    """
    u = np.asarray(u, dtype=bool)
    v = np.asarray(v, dtype=bool)
    union = np.logical_or(u, v).sum()
    if union == 0:
        return 0.0
    intersection = np.logical_and(u, v).sum()
    return float(1.0 - intersection / union)


def hamming_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Normalized Hamming distance (fraction of differing positions)."""
    u = np.asarray(u, dtype=bool)
    v = np.asarray(v, dtype=bool)
    if u.shape != v.shape:
        raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
    return float(np.mean(u != v))


def euclidean_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Euclidean distance on 0/1 vectors, normalized to [0, 1] by sqrt(R)."""
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    if u.shape != v.shape:
        raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
    if u.size == 0:
        return 0.0
    return float(np.linalg.norm(u - v) / np.sqrt(u.size))


def angular_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Angular distance (normalized angle between vectors), a metric in [0, 1].

    The raw cosine *dissimilarity* is not a metric; the arccos of cosine
    similarity is.  All-zero vectors are treated as identical to each other
    and maximally distant from non-zero vectors.
    """
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    norm_u = np.linalg.norm(u)
    norm_v = np.linalg.norm(v)
    if norm_u == 0.0 and norm_v == 0.0:
        return 0.0
    if norm_u == 0.0 or norm_v == 0.0:
        return 1.0
    cosine = float(np.clip(np.dot(u, v) / (norm_u * norm_v), -1.0, 1.0))
    if cosine >= 1.0 - 1e-12:
        # arccos loses ~1e-8 of precision near 1, which would make d(x, x)
        # slightly positive; snap exact/near-parallel vectors to distance 0.
        return 0.0
    # Non-negative vectors span angles in [0, pi/2]; scale onto [0, 1].
    return float(np.arccos(cosine) * 2.0 / np.pi)


_REGISTRY: dict[str, DistanceFn] = {
    "jaccard": jaccard_distance,
    "hamming": hamming_distance,
    "euclidean": euclidean_distance,
    "angular": angular_distance,
}


def get_distance(name: str) -> DistanceFn:
    """Look up a registered distance by name.

    >>> get_distance("jaccard") is jaccard_distance
    True
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown distance {name!r}; known distances: {known}") from None


def register_distance(
    name: str,
    fn: DistanceFn,
    check_sample: np.ndarray | None = None,
) -> None:
    """Register a custom distance, optionally verifying metricity on a sample.

    The approximation guarantees of HTA-GRE require the triangle inequality,
    so callers registering a custom function are encouraged to pass a
    representative ``check_sample`` matrix (rows = vectors); registration then
    fails loudly if any metric axiom is violated on the sample.
    """
    if name in _REGISTRY:
        raise ValueError(f"distance {name!r} is already registered")
    if check_sample is not None:
        check_metric_on_sample(fn, check_sample)
    _REGISTRY[name] = fn


def registered_distances() -> tuple[str, ...]:
    """Names of all registered distances."""
    return tuple(sorted(_REGISTRY))


def check_metric_on_sample(
    fn: DistanceFn,
    sample: np.ndarray,
    atol: float = 1e-9,
) -> None:
    """Check the metric axioms of ``fn`` on every triple of sample rows.

    Verifies identity (d(x, x) = 0), non-negativity, symmetry, and the
    triangle inequality.  Raises :class:`NotAMetricError` on the first
    violation.  Cost is cubic in the number of rows, so keep samples small
    (tests use 10-20 rows).
    """
    rows = np.asarray(sample)
    n = rows.shape[0]
    distance = np.zeros((n, n))
    for i in range(n):
        if abs(fn(rows[i], rows[i])) > atol:
            raise NotAMetricError(f"d(x, x) != 0 for row {i}")
        for j in range(i + 1, n):
            dij = fn(rows[i], rows[j])
            dji = fn(rows[j], rows[i])
            if dij < -atol:
                raise NotAMetricError(f"negative distance between rows {i} and {j}")
            if abs(dij - dji) > atol:
                raise NotAMetricError(f"asymmetric distance between rows {i} and {j}")
            distance[i, j] = distance[j, i] = dij
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if distance[i, j] > distance[i, k] + distance[k, j] + atol:
                    raise NotAMetricError(
                        f"triangle inequality violated on rows ({i}, {j}, {k}): "
                        f"{distance[i, j]} > {distance[i, k]} + {distance[k, j]}"
                    )


def pairwise_jaccard(
    matrix: np.ndarray,
    other: np.ndarray | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Dense Jaccard-distance matrix between rows of boolean matrices.

    With one argument returns the symmetric ``(n, n)`` matrix of distances
    between rows of ``matrix``; with two arguments the ``(n, m)`` cross
    matrix.

    Both kernels compute exact integer intersection counts blockwise —
    ``"packed"`` (default) as popcounts over bit-packed ``uint64`` words,
    ``"dense"`` as int64 dot products ``|u & v| = u . v`` — and share the
    float post-processing below, so their outputs are bit-identical.
    ``kernel=None`` defers to :func:`repro.perf.config.get_kernel`.
    """
    chosen = resolve_kernel("jaccard", kernel)
    left = np.asarray(matrix, dtype=bool)
    right = left if other is None else np.asarray(other, dtype=bool)
    left_counts = left.sum(axis=1).astype(np.int64)
    right_counts = right.sum(axis=1).astype(np.int64)
    n, m = left.shape[0], right.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    if chosen == "packed":
        left_words = bitpack.pack_rows(left)
        right_words = left_words if other is None else bitpack.pack_rows(right)

        def intersections(start: int, stop: int) -> np.ndarray:
            return bitpack.packed_intersections(left_words[start:stop], right_words)

    else:
        left_int = left.astype(np.int64)
        right_int_t = right.astype(np.int64).T

        def intersections(start: int, stop: int) -> np.ndarray:
            return left_int[start:stop] @ right_int_t

    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        intersection = intersections(start, stop)
        union = left_counts[start:stop, None] + right_counts[None, :] - intersection
        block = np.ones_like(intersection, dtype=np.float64)
        nonzero = union > 0
        block[nonzero] = 1.0 - intersection[nonzero] / union[nonzero]
        # Two empty vectors have union 0 and are identical: distance 0.
        block[~nonzero] = 0.0
        out[start:stop] = block
    if other is None:
        np.fill_diagonal(out, 0.0)
    return out


def take_submatrix(matrix: np.ndarray, indices: Sequence[int] | np.ndarray) -> np.ndarray:
    """Contiguous symmetric submatrix ``matrix[indices][:, indices]``.

    The incremental diversity cache keeps one big pairwise matrix alive
    across assignment iterations and carves per-solve blocks out of it; this
    helper does the carving in one fancy-indexing pass and returns a
    C-contiguous copy so downstream solvers iterate cache-friendly rows
    instead of strided views.

    >>> m = pairwise_jaccard(np.eye(4, dtype=bool))
    >>> take_submatrix(m, [0, 2]).shape
    (2, 2)
    """
    square = np.asarray(matrix)
    if square.ndim != 2 or square.shape[0] != square.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {square.shape}")
    idx = np.asarray(indices, dtype=np.intp)
    return np.ascontiguousarray(square[np.ix_(idx, idx)])


def pairwise_matrix(
    matrix: np.ndarray,
    distance: str | DistanceFn = "jaccard",
    other: np.ndarray | None = None,
) -> np.ndarray:
    """Pairwise distance matrix for any registered or callable distance.

    The Jaccard path is vectorized; other distances fall back to a generic
    double loop (fine for the moderate sizes where non-default metrics are
    used).
    """
    fn = get_distance(distance) if isinstance(distance, str) else distance
    if fn is jaccard_distance:
        return pairwise_jaccard(matrix, other)
    left = np.asarray(matrix)
    right = left if other is None else np.asarray(other)
    n, m = left.shape[0], right.shape[0]
    out = np.zeros((n, m))
    if other is None:
        for i in range(n):
            for j in range(i + 1, m):
                out[i, j] = out[j, i] = fn(left[i], right[j])
    else:
        for i in range(n):
            for j in range(m):
                out[i, j] = fn(left[i], right[j])
    return out


@dataclass(frozen=True)
class DistanceSpec:
    """A named distance plus the matrices it produces, for experiment configs."""

    name: str = "jaccard"

    @property
    def fn(self) -> DistanceFn:
        return get_distance(self.name)

    def matrix(self, vectors: np.ndarray, other: np.ndarray | None = None) -> np.ndarray:
        return pairwise_matrix(vectors, self.name, other)


def weighted_jaccard_factory(weights: np.ndarray) -> DistanceFn:
    """Build a weighted Jaccard distance for non-negative keyword weights.

    ``d(u, v) = 1 - sum_i w_i min(u_i, v_i) / sum_i w_i max(u_i, v_i)`` — the
    Ruzicka distance restricted to boolean vectors, a metric for any
    non-negative weights.  Use with :func:`idf_weights` so rare (more
    informative) keywords dominate the diversity signal, as in IR practice.

    The returned function can be passed anywhere a distance is accepted, or
    registered under a name via :func:`register_distance`.
    """
    weight_vector = np.asarray(weights, dtype=float)
    if weight_vector.ndim != 1:
        raise ValueError(f"weights must be 1-D, got shape {weight_vector.shape}")
    if (weight_vector < 0).any():
        raise ValueError("weights must be non-negative")
    if not weight_vector.any():
        raise ValueError("weights must not be all zero")

    def weighted_jaccard(u: np.ndarray, v: np.ndarray) -> float:
        a = np.asarray(u, dtype=bool)
        b = np.asarray(v, dtype=bool)
        if a.shape != weight_vector.shape or b.shape != weight_vector.shape:
            raise ValueError(
                f"vectors must have shape {weight_vector.shape}, "
                f"got {a.shape} and {b.shape}"
            )
        union = float(weight_vector[a | b].sum())
        if union == 0.0:
            return 0.0
        intersection = float(weight_vector[a & b].sum())
        return 1.0 - intersection / union

    return weighted_jaccard


def idf_weights(matrix: np.ndarray, smoothing: float = 1.0) -> np.ndarray:
    """Inverse-document-frequency weights from a boolean corpus matrix.

    ``w_i = log((n + smoothing) / (df_i + smoothing))`` where ``df_i`` is
    the number of rows containing keyword ``i``.  Keywords appearing
    everywhere get weight ~0; rare keywords get large weights.
    """
    rows = np.asarray(matrix, dtype=bool)
    if rows.ndim != 2:
        raise ValueError(f"corpus matrix must be 2-D, got {rows.ndim}-D")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    document_frequency = rows.sum(axis=0).astype(float)
    n = rows.shape[0]
    return np.log((n + smoothing) / (document_frequency + smoothing))

"""The motivation objective (Section II, Eqs. 1-3).

Implements task diversity ``TD``, task relevance ``TR``, the combined
``motiv`` score, and the marginal-gain quantities used by the adaptive
alpha/beta estimation (Section III).

Two layers are provided:

* object-level functions over :class:`~repro.core.task.Task` /
  :class:`~repro.core.worker.Worker` — readable, used in examples and tests;
* matrix-level functions over precomputed diversity/relevance matrices —
  used by the solvers and the simulator where speed matters.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .distance import DistanceFn, get_distance
from .task import Task
from .worker import Worker


def task_diversity(tasks: Sequence[Task], distance: str | DistanceFn = "jaccard") -> float:
    """``TD(T')`` — sum of pairwise distances within a task set (Eq. 1)."""
    fn = get_distance(distance) if isinstance(distance, str) else distance
    total = 0.0
    for i, task_i in enumerate(tasks):
        for task_j in tasks[i + 1 :]:
            total += fn(task_i.vector, task_j.vector)
    return total


def relevance(task: Task, worker: Worker, distance: str | DistanceFn = "jaccard") -> float:
    """``rel(t, w) = 1 - d_rel(t, w)`` (Section II).

    The paper uses Jaccard for ``d_rel`` as well; any registered distance
    mapping into [0, 1] works.
    """
    fn = get_distance(distance) if isinstance(distance, str) else distance
    return 1.0 - fn(np.asarray(task.vector, dtype=bool), np.asarray(worker.vector, dtype=bool))


def task_relevance(
    tasks: Sequence[Task],
    worker: Worker,
    distance: str | DistanceFn = "jaccard",
) -> float:
    """``TR(T', w)`` — sum of per-task relevances (Eq. 2)."""
    return sum(relevance(task, worker, distance) for task in tasks)


def motivation(
    tasks: Sequence[Task],
    worker: Worker,
    distance: str | DistanceFn = "jaccard",
) -> float:
    """``motiv(T', w) = 2 a TD(T') + b (|T'|-1) TR(T', w)`` (Eq. 3).

    The ``2`` and ``(|T'|-1)`` factors normalize the quadratic diversity term
    and the linear relevance term onto comparable scales (a set of ``n`` tasks
    has ``n(n-1)/2`` pairs but ``n`` relevance terms).
    """
    if not tasks:
        return 0.0
    diversity = task_diversity(tasks, distance)
    rel_total = task_relevance(tasks, worker, distance)
    return 2.0 * worker.alpha * diversity + worker.beta * (len(tasks) - 1) * rel_total


# ---------------------------------------------------------------------------
# Matrix-level counterparts.
# ---------------------------------------------------------------------------


def diversity_of_subset(diversity_matrix: np.ndarray, indices: Sequence[int]) -> float:
    """``TD`` of the tasks at ``indices`` given the full pairwise matrix."""
    idx = np.asarray(indices, dtype=np.intp)
    if idx.size < 2:
        return 0.0
    sub = diversity_matrix[np.ix_(idx, idx)]
    return float(np.triu(sub, k=1).sum())


def relevance_of_subset(relevance_row: np.ndarray, indices: Sequence[int]) -> float:
    """``TR`` of the tasks at ``indices`` for one worker's relevance row."""
    idx = np.asarray(indices, dtype=np.intp)
    if idx.size == 0:
        return 0.0
    return float(relevance_row[idx].sum())


def motivation_of_subset(
    diversity_matrix: np.ndarray,
    relevance_row: np.ndarray,
    indices: Sequence[int],
    alpha: float,
    beta: float,
) -> float:
    """Matrix-level Eq. 3 for one worker's assigned task indices."""
    idx = np.asarray(indices, dtype=np.intp)
    if idx.size == 0:
        return 0.0
    diversity = diversity_of_subset(diversity_matrix, idx)
    rel_total = relevance_of_subset(relevance_row, idx)
    return 2.0 * alpha * diversity + beta * (idx.size - 1) * rel_total


def total_motivation(
    diversity_matrix: np.ndarray,
    relevance_matrix: np.ndarray,
    assignment_indices: Sequence[Sequence[int]],
    alphas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """The HTA objective: sum of per-worker motivations (Problem 1).

    ``relevance_matrix`` has shape ``(n_workers, n_tasks)``;
    ``assignment_indices[q]`` are the task indices assigned to worker ``q``.
    """
    return sum(
        motivation_of_subset(
            diversity_matrix, relevance_matrix[q], indices, alphas[q], betas[q]
        )
        for q, indices in enumerate(assignment_indices)
    )


# ---------------------------------------------------------------------------
# Marginal gains for the adaptive alpha/beta update (Section III).
# ---------------------------------------------------------------------------


def marginal_diversity_gain(
    diversity_matrix: np.ndarray,
    completed_before: Sequence[int],
    new_index: int,
) -> float:
    """Diversity added by completing ``new_index`` after ``completed_before``.

    ``sum_{t_k in completed} d(t_new, t_k)`` — the quantity the platform
    observes after every completion.
    """
    if not len(completed_before):
        return 0.0
    idx = np.asarray(completed_before, dtype=np.intp)
    return float(diversity_matrix[new_index, idx].sum())


def best_remaining_diversity_gain(
    diversity_matrix: np.ndarray,
    completed_before: Sequence[int],
    remaining: Sequence[int],
) -> float:
    """Largest diversity gain any remaining task could have delivered.

    Normalizer of the observed diversity gain: the paper divides each gain by
    the maximum achievable over ``T_w \\ completed``.
    """
    rem = np.asarray(remaining, dtype=np.intp)
    if rem.size == 0 or not len(completed_before):
        return 0.0
    idx = np.asarray(completed_before, dtype=np.intp)
    return float(diversity_matrix[np.ix_(rem, idx)].sum(axis=1).max())


def best_remaining_relevance_gain(
    relevance_row: np.ndarray,
    remaining: Sequence[int],
) -> float:
    """Largest relevance any remaining task could have delivered."""
    rem = np.asarray(remaining, dtype=np.intp)
    if rem.size == 0:
        return 0.0
    return float(relevance_row[rem].max())

"""Local-search improvement for HTA (an extension beyond the paper).

Hill-climbs an initial assignment (by default HTA-GRE's output) under three
move types until no move improves the objective:

* **replace** — swap an assigned task with an unassigned one;
* **exchange** — swap two tasks between two workers;
* **steal** — move a task into another worker's free slot.

Deltas are evaluated incrementally from the instance's diversity/relevance
matrices, so one full pass costs ``O(|W| * x_max * |T|)``.  The result is
never worse than the initial solution, which makes ``hta-local`` a natural
upper reference for the ablation benches: it measures how much objective
HTA-GRE leaves on the table in practice (typically very little — see
``bench_ablation_local_search.py``).

The HTA objective used here is Eq. 3 with the *actual* set sizes, matching
:meth:`repro.core.assignment.Assignment.objective`.
"""

from __future__ import annotations

import time

import numpy as np

from ...errors import InvalidInstanceError
from ...rng import ensure_rng
from ..assignment import Assignment
from ..instance import HTAInstance
from .base import Solver, SolveResult, register_solver
from .hta_gre import HTAGreSolver


@register_solver
class LocalSearchSolver(Solver):
    """Hill-climbing HTA solver.

    Args:
        initial: Solver producing the starting assignment (HTA-GRE default;
            pass ``repro.core.solvers.RandomSolver()`` to measure how much
            the pipeline itself contributes).
        max_passes: Safety cap on full improvement passes.
    """

    name = "hta-local"

    def __init__(self, initial: Solver | None = None, max_passes: int = 50):
        if max_passes < 1:
            raise InvalidInstanceError(f"max_passes must be >= 1, got {max_passes}")
        self._initial = initial or HTAGreSolver()
        self._max_passes = max_passes

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        generator = ensure_rng(rng)
        start = time.perf_counter()
        seed_result = self._initial.solve(instance, generator)
        groups = [list(g) for g in seed_result.assignment.indices(instance)]
        state = _SearchState(instance, groups)

        passes = 0
        improved = True
        while improved and passes < self._max_passes:
            improved = state.improvement_pass()
            passes += 1

        assignment = Assignment.from_indices(instance, state.groups)
        assignment.validate(instance)
        elapsed = time.perf_counter() - start
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings={**seed_result.timings, "local_search": elapsed, "total": elapsed},
            info={
                "solver": self.name,
                "initial_solver": seed_result.info.get("solver", "unknown"),
                "initial_objective": seed_result.objective,
                "passes": passes,
            },
        )


class _SearchState:
    """Mutable assignment state with incremental delta evaluation."""

    def __init__(self, instance: HTAInstance, groups: list[list[int]]):
        self.instance = instance
        self.groups = groups
        self.diversity = instance.diversity
        self.relevance = instance.relevance
        self.alphas = instance.alphas()
        self.betas = instance.betas()
        assigned = {t for g in groups for t in g}
        self.unassigned = [t for t in range(instance.n_tasks) if t not in assigned]

    # -- scoring ---------------------------------------------------------

    def worker_value(self, q: int, tasks: list[int]) -> float:
        """Eq. 3 motivation of worker ``q`` for ``tasks``."""
        if not tasks:
            return 0.0
        idx = np.asarray(tasks, dtype=np.intp)
        diversity = 0.0
        if idx.size > 1:
            sub = self.diversity[np.ix_(idx, idx)]
            diversity = float(np.triu(sub, k=1).sum())
        rel_total = float(self.relevance[q, idx].sum())
        return (
            2.0 * self.alphas[q] * diversity
            + self.betas[q] * (idx.size - 1) * rel_total
        )

    def replace_delta(self, q: int, position: int, new_task: int) -> float:
        """Objective change from replacing ``groups[q][position]`` with
        ``new_task`` (which must be unassigned)."""
        tasks = self.groups[q]
        old_task = tasks[position]
        others = [t for i, t in enumerate(tasks) if i != position]
        alpha, beta = self.alphas[q], self.betas[q]
        div_delta = 0.0
        if others:
            idx = np.asarray(others, dtype=np.intp)
            div_delta = float(
                self.diversity[new_task, idx].sum()
                - self.diversity[old_task, idx].sum()
            )
        rel_delta = float(
            self.relevance[q, new_task] - self.relevance[q, old_task]
        )
        return 2.0 * alpha * div_delta + beta * (len(tasks) - 1) * rel_delta

    # -- moves -----------------------------------------------------------

    def improvement_pass(self) -> bool:
        """One sweep over all moves; returns True if anything improved."""
        improved = False
        improved |= self._pass_replace()
        improved |= self._pass_exchange()
        improved |= self._pass_steal()
        return improved

    def _pass_replace(self) -> bool:
        if not self.unassigned:
            return False
        improved = False
        for q, tasks in enumerate(self.groups):
            for position in range(len(tasks)):
                best_delta, best_u = 0.0, -1
                for u_index, candidate in enumerate(self.unassigned):
                    delta = self.replace_delta(q, position, candidate)
                    if delta > best_delta + 1e-12:
                        best_delta, best_u = delta, u_index
                if best_u >= 0:
                    old = tasks[position]
                    tasks[position] = self.unassigned[best_u]
                    self.unassigned[best_u] = old
                    improved = True
        return improved

    def _pass_exchange(self) -> bool:
        improved = False
        n_workers = len(self.groups)
        for q_a in range(n_workers):
            for q_b in range(q_a + 1, n_workers):
                improved |= self._exchange_pair(q_a, q_b)
        return improved

    def _exchange_pair(self, q_a: int, q_b: int) -> bool:
        improved = False
        tasks_a, tasks_b = self.groups[q_a], self.groups[q_b]
        base = self.worker_value(q_a, tasks_a) + self.worker_value(q_b, tasks_b)
        for i in range(len(tasks_a)):
            for j in range(len(tasks_b)):
                tasks_a[i], tasks_b[j] = tasks_b[j], tasks_a[i]
                value = self.worker_value(q_a, tasks_a) + self.worker_value(
                    q_b, tasks_b
                )
                if value > base + 1e-12:
                    base = value
                    improved = True
                else:
                    tasks_a[i], tasks_b[j] = tasks_b[j], tasks_a[i]
        return improved

    def _pass_steal(self) -> bool:
        x_max = self.instance.x_max
        improved = False
        for q_from, tasks_from in enumerate(self.groups):
            for q_to, tasks_to in enumerate(self.groups):
                if q_from == q_to or len(tasks_to) >= x_max:
                    continue
                i = 0
                while i < len(tasks_from):
                    task = tasks_from[i]
                    before = self.worker_value(q_from, tasks_from) + self.worker_value(
                        q_to, tasks_to
                    )
                    tasks_from.pop(i)
                    tasks_to.append(task)
                    after = self.worker_value(q_from, tasks_from) + self.worker_value(
                        q_to, tasks_to
                    )
                    if after > before + 1e-12:
                        improved = True
                        if len(tasks_to) >= x_max:
                            break
                    else:
                        tasks_to.pop()
                        tasks_from.insert(i, task)
                        i += 1
        return improved

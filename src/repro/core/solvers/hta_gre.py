"""HTA-GRE (Algorithm 2): the fast 1/8-approximation.

Identical to HTA-APP except the auxiliary LSAP is solved with GreedyMatching
on the complete bipartite profit graph (a 1/2-approximation for LSAP,
Lemma 4).  Overall ``O(|T|^2 log |T|)`` (Lemma 5) with an expected 1/8
approximation factor (Theorem 4) — the paper's recommended algorithm.

An ``lsap_method`` override is exposed so the ablation bench can swap in the
auction solver while keeping everything else fixed.
"""

from __future__ import annotations

import numpy as np

from ..assignment import Assignment
from ..instance import HTAInstance
from .base import Solver, SolveResult, register_solver
from .pipeline import run_qap_pipeline


@register_solver
class HTAGreSolver(Solver):
    """Algorithm 2 of the paper.

    Args:
        lsap_method: LSAP subroutine (``"greedy"`` default; any method from
            :func:`repro.matching.lsap.lsap_methods` is accepted).
        matching_method: Matching used on ``B``.
        n_swap_samples: Swap draws to evaluate (1 = paper's algorithm).
    """

    name = "hta-gre"

    def __init__(
        self,
        lsap_method: str = "greedy",
        matching_method: str = "greedy",
        n_swap_samples: int = 1,
    ):
        self._lsap_method = lsap_method
        self._matching_method = matching_method
        self._n_swap_samples = n_swap_samples

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        output = run_qap_pipeline(
            instance,
            lsap_method=self._lsap_method,
            rng=rng,
            matching_method=self._matching_method,
            n_swap_samples=self._n_swap_samples,
        )
        assignment = Assignment.from_indices(instance, output.groups)
        assignment.validate(instance)
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings=output.timings,
            info={**output.info, "solver": self.name},
        )

"""Solver interface, result type, and registry.

Every HTA solver consumes an :class:`~repro.core.instance.HTAInstance` and
produces a :class:`SolveResult`: the assignment, its objective value, and a
per-phase timing breakdown (the paper's Fig. 2a splits HTA-APP/HTA-GRE time
into a *Matching* and an *Lsap* phase, so solvers record those explicitly).

Solvers register under a short name (``"hta-app"``, ``"hta-gre"``, ...) so
experiments and the CLI can select them by string.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from ...errors import UnknownSolverError
from ..assignment import Assignment
from ..instance import HTAInstance


@dataclass(frozen=True)
class SolveResult:
    """Output of one solver run.

    Attributes:
        assignment: The task assignment (validates C1/C2).
        objective: Total expected motivation (Problem 1 objective) of the
            assignment, evaluated with Eq. 3 on the actual set sizes.
        timings: Seconds spent per phase; keys used by the scalability
            benches: ``"encode"``, ``"matching"``, ``"lsap"``, ``"decode"``,
            and ``"total"``.
        info: Free-form solver metadata (LSAP method used, swap draws, ...).
    """

    assignment: Assignment
    objective: float
    timings: dict[str, float] = field(default_factory=dict)
    info: dict[str, object] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.timings.get("total", sum(self.timings.values()))


class Solver(abc.ABC):
    """Base class for HTA solvers."""

    #: Registry name; subclasses must override.
    name: str = ""

    @abc.abstractmethod
    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        """Solve ``instance`` and return a validated assignment."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[Solver]] = {}


def register_solver(cls: type[Solver]) -> type[Solver]:
    """Class decorator adding ``cls`` to the solver registry."""
    if not cls.name:
        raise ValueError(f"solver class {cls.__name__} must define a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"solver name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_solver(name: str, **kwargs) -> Solver:
    """Instantiate a registered solver by name.

    Keyword arguments are forwarded to the solver constructor.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered solvers: {known}"
        ) from None
    return cls(**kwargs)


def solver_names() -> tuple[str, ...]:
    """All registered solver names."""
    return tuple(sorted(_REGISTRY))


def iter_solvers() -> Iterator[type[Solver]]:
    yield from _REGISTRY.values()

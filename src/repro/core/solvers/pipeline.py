"""The shared HTA-APP / HTA-GRE pipeline (Algorithms 1 and 2).

Both algorithms run the same five phases and differ only in how the
auxiliary LSAP (line 11) is solved:

1. *encode* — build the MAXQAP matrices (Eqs. 4-6);
2. *matching* — a (greedy) maximum-weight matching ``M_B`` on the diversity
   graph ``B``;
3. *profits* — the auxiliary LSAP profit matrix
   ``f[k, l] = bM(t_k) * degA_l + c[k, l]`` (line 10);
4. *lsap* — solve the LSAP: Hungarian for HTA-APP, greedy for HTA-GRE;
5. *swap + decode* — per matched edge, swap the two tasks' vertices with
   probability 1/2 (lines 12-16), then read off ``T_wq`` via Eq. 7.

Phase timings are recorded so the Fig. 2a bench can report the
Matching/Lsap split exactly as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ...matching.exact import MAX_EXACT_VERTICES, exact_max_weight_matching
from ...matching.greedy import greedy_matching_dense
from ...matching.lsap import solve_lsap
from ...rng import ensure_rng
from ..qap import QAPEncoding, build_encoding
from ..instance import HTAInstance


@dataclass(frozen=True)
class PipelineOutput:
    """Raw pipeline result before wrapping into an Assignment."""

    groups: list[list[int]]
    permutation: np.ndarray
    qap_objective: float
    timings: dict[str, float]
    info: dict[str, object]


def run_qap_pipeline(
    instance: HTAInstance,
    lsap_method: str,
    rng: "int | np.random.Generator | None" = None,
    matching_method: str = "greedy",
    n_swap_samples: int = 1,
) -> PipelineOutput:
    """Run Algorithm 1/2 and return per-worker task indices.

    Args:
        instance: The HTA instance.
        lsap_method: ``"hungarian"`` (HTA-APP), ``"greedy"`` (HTA-GRE), or
            ``"auction"`` (ablation).
        rng: Randomness source for the swap step.
        matching_method: ``"greedy"`` (default; preserves the bounds per
            Arkin et al.) or ``"exact"`` (bitmask DP; tiny instances only).
        n_swap_samples: Number of independent swap draws to evaluate; the
            best by QAP objective is kept.  ``1`` reproduces the paper's
            algorithm exactly; larger values are a practical derandomization
            knob (the 1/4 and 1/8 factors hold *in expectation* over swaps).
    """
    if n_swap_samples < 1:
        raise ValueError(f"n_swap_samples must be >= 1, got {n_swap_samples}")
    generator = ensure_rng(rng)
    timings: dict[str, float] = {}

    start = time.perf_counter()
    encoding = build_encoding(instance)
    timings["encode"] = time.perf_counter() - start

    start = time.perf_counter()
    matching = _diversity_matching(encoding, matching_method)
    matched_weight = _matched_edge_weights(encoding, matching)
    timings["matching"] = time.perf_counter() - start

    start = time.perf_counter()
    profits = encoding.profit_matrix(matched_weight)
    timings["profits"] = time.perf_counter() - start

    start = time.perf_counter()
    # Randomize the LSAP's tie-breaking by relabeling the rows.  Clustered
    # pools (AMT task groups) make the profits massively tied: when the
    # diversity matching saturates, f[k, l] barely depends on k, and a
    # deterministic tie-break packs consecutive same-group (near-identical)
    # tasks into one worker's clique, collapsing intra-set diversity below
    # even a random deal.  The guarantee holds for every fixed labeling, so
    # it also holds in expectation over a uniform one.
    row_order = generator.permutation(encoding.n_vertices)
    shuffled = solve_lsap(profits[row_order], lsap_method).row_to_col
    base_permutation = np.empty(encoding.n_vertices, dtype=np.intp)
    base_permutation[row_order] = shuffled
    timings["lsap"] = time.perf_counter() - start

    start = time.perf_counter()
    permutation, qap_value = _best_swap(
        encoding, base_permutation, matching, generator, n_swap_samples
    )
    groups = encoding.tasks_by_worker(permutation)
    timings["decode"] = time.perf_counter() - start
    timings["total"] = sum(timings.values())

    info: dict[str, object] = {
        "lsap_method": lsap_method,
        "matching_method": matching_method,
        "matching_size": len(matching),
        "n_swap_samples": n_swap_samples,
    }
    return PipelineOutput(
        groups=groups,
        permutation=permutation,
        qap_objective=qap_value,
        timings=timings,
        info=info,
    )


def _diversity_matching(
    encoding: QAPEncoding, method: str
) -> list[tuple[int, int]]:
    """The matching ``M_B`` on the (padded) diversity graph (line 2)."""
    if method == "greedy":
        return greedy_matching_dense(encoding.diversity)
    if method == "exact":
        if encoding.n_vertices > MAX_EXACT_VERTICES:
            raise ValueError(
                f"exact matching supports at most {MAX_EXACT_VERTICES} "
                f"vertices, instance has {encoding.n_vertices}"
            )
        return exact_max_weight_matching(encoding.diversity)
    raise ValueError(f"unknown matching method {method!r}; use 'greedy' or 'exact'")


def _matched_edge_weights(
    encoding: QAPEncoding, matching: list[tuple[int, int]]
) -> np.ndarray:
    """``bM(t_k)``: the weight of the matched edge covering ``t_k``, else 0
    (Algorithm 1 lines 5-8)."""
    weights = np.zeros(encoding.n_vertices)
    for i, j in matching:
        w = encoding.diversity[i, j]
        weights[i] = w
        weights[j] = w
    return weights


def _best_swap(
    encoding: QAPEncoding,
    base_permutation: np.ndarray,
    matching: list[tuple[int, int]],
    rng: np.random.Generator,
    n_samples: int,
) -> tuple[np.ndarray, float]:
    """Randomized per-edge swap (lines 12-16), best of ``n_samples`` draws.

    The unswapped LSAP permutation is always evaluated as a candidate too:
    the approximation analysis credits the swap with only half of the
    relevance term in expectation (Eq. 21), so for relevance-heavy instances
    the raw LSAP solution is often strictly better.  Taking the max over
    candidates can only raise the expected objective, so Theorem 3/4's
    bounds are preserved.
    """
    best_perm = base_permutation.copy()
    best_value = encoding.objective(best_perm)
    for _ in range(n_samples):
        permutation = base_permutation.copy()
        if matching:
            flips = rng.random(len(matching)) < 0.5
            for flip, (k, l) in zip(flips, matching):
                if flip:
                    permutation[k], permutation[l] = permutation[l], permutation[k]
        value = encoding.objective(permutation)
        if value > best_value:
            best_value = value
            best_perm = permutation
    assert best_perm is not None
    return best_perm, float(best_value)

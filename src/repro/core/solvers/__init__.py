"""HTA solvers: the paper's algorithms, baselines, and the exact oracle."""

from .base import Solver, SolveResult, get_solver, register_solver, solver_names
from .baselines import (
    HTAGreDivSolver,
    HTAGreRelSolver,
    RandomSolver,
    override_weights,
)
from .exact import ExactSolver
from .greedy_marginal import GreedyMarginalSolver
from .greedy_relevance import RelevanceGreedySolver
from .hta_app import HTAAppSolver
from .local_search import LocalSearchSolver
from .hta_gre import HTAGreSolver
from .pipeline import PipelineOutput, run_qap_pipeline

__all__ = [
    "ExactSolver",
    "GreedyMarginalSolver",
    "HTAAppSolver",
    "HTAGreDivSolver",
    "HTAGreRelSolver",
    "HTAGreSolver",
    "LocalSearchSolver",
    "PipelineOutput",
    "RandomSolver",
    "RelevanceGreedySolver",
    "SolveResult",
    "Solver",
    "get_solver",
    "override_weights",
    "register_solver",
    "run_qap_pipeline",
    "solver_names",
]

"""Greedy marginal-gain solver — a natural direct baseline.

Instead of the paper's linearize-then-match pipeline, repeatedly assign the
(worker, task) pair with the largest marginal increase of the *actual*
Eq. 3 objective until every worker is full or tasks run out.

Marginal gain of adding task ``t`` to worker ``q``'s current set ``S``:

```
Δ = 2·α_q·Σ_{s∈S} d(t, s) + β_q·(|S|·rel(t) + TR(S))
```

(the second term accounts for both the new task's relevance and the
``(|S∪{t}|−1)`` multiplier growing by one for the existing relevance mass).

No approximation factor is claimed — the objective is not submodular across
workers under C2 — but empirically it is a strong, simple baseline that the
ablation bench compares against the paper's algorithms.  Complexity
``O(|W|·Xmax·|T|·Xmax)`` with vectorized gain evaluation per step.
"""

from __future__ import annotations

import time

import numpy as np

from ...rng import ensure_rng
from ..assignment import Assignment
from ..instance import HTAInstance
from .base import Solver, SolveResult, register_solver


@register_solver
class GreedyMarginalSolver(Solver):
    """Iterative best-(worker, task) insertion on the exact objective."""

    name = "greedy-marginal"

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        ensure_rng(rng)  # accepted for interface symmetry; algorithm is deterministic
        start = time.perf_counter()
        diversity = instance.diversity
        relevance = instance.relevance
        alphas = instance.alphas()
        betas = instance.betas()
        n_tasks = instance.n_tasks
        n_workers = instance.n_workers
        x_max = instance.x_max

        groups: list[list[int]] = [[] for _ in range(n_workers)]
        available = np.ones(n_tasks, dtype=bool)
        # Per worker: Σ_{s∈S} d(t, s) for every candidate t (updated
        # incrementally as tasks join the set), and TR(S).
        diversity_to_set = np.zeros((n_workers, n_tasks))
        relevance_of_set = np.zeros(n_workers)

        total_slots = min(n_tasks, n_workers * x_max)
        for _ in range(total_slots):
            best_gain = -np.inf
            best_worker = -1
            best_task = -1
            for q in range(n_workers):
                size = len(groups[q])
                if size >= x_max:
                    continue
                gains = (
                    2.0 * alphas[q] * diversity_to_set[q]
                    + betas[q] * (size * relevance[q] + relevance_of_set[q])
                )
                gains = np.where(available, gains, -np.inf)
                candidate = int(np.argmax(gains))
                if gains[candidate] > best_gain:
                    best_gain = float(gains[candidate])
                    best_worker, best_task = q, candidate
            if best_worker < 0:
                break
            groups[best_worker].append(best_task)
            available[best_task] = False
            diversity_to_set[best_worker] += diversity[best_task]
            relevance_of_set[best_worker] += relevance[best_worker, best_task]

        assignment = Assignment.from_indices(instance, groups)
        assignment.validate(instance)
        elapsed = time.perf_counter() - start
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings={"total": elapsed},
            info={"solver": self.name},
        )

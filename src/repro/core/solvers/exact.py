"""Exact HTA solver — the test oracle.

Exhaustively enumerates every feasible assignment (all ways to hand each
worker a subset of at most ``x_max`` still-unassigned tasks) and keeps the
best.  Exponential; guarded to tiny instances.  Used by the test suite to
pin down the approximation ratios of HTA-APP and HTA-GRE empirically.

Two objective modes:

* ``"hta"`` (default): Eq. 3 with the *actual* set sizes — Problem 1's
  literal objective;
* ``"qap"``: the MAXQAP-encoded objective, which scales relevance by
  ``(x_max - 1)`` regardless of set size.  The two coincide whenever every
  worker receives exactly ``x_max`` tasks (Eq. 8); the mode switch lets
  tests exercise both readings.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ...errors import InvalidInstanceError
from ..assignment import Assignment
from ..instance import HTAInstance
from ..motivation import diversity_of_subset, relevance_of_subset
from .base import Solver, SolveResult, register_solver

#: Enumeration explodes combinatorially; this caps the search effort.
MAX_EXACT_TASKS = 12
MAX_EXACT_WORKERS = 4


@register_solver
class ExactSolver(Solver):
    """Brute-force optimal HTA solver for tiny instances."""

    name = "exact"

    def __init__(self, objective: str = "hta"):
        if objective not in ("hta", "qap"):
            raise ValueError(f"objective must be 'hta' or 'qap', got {objective!r}")
        self._objective_mode = objective

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        if instance.n_tasks > MAX_EXACT_TASKS:
            raise InvalidInstanceError(
                f"exact solver supports at most {MAX_EXACT_TASKS} tasks, "
                f"got {instance.n_tasks}"
            )
        if instance.n_workers > MAX_EXACT_WORKERS:
            raise InvalidInstanceError(
                f"exact solver supports at most {MAX_EXACT_WORKERS} workers, "
                f"got {instance.n_workers}"
            )
        diversity = instance.diversity
        relevance = instance.relevance
        alphas = instance.alphas()
        betas = instance.betas()
        x_max = instance.x_max
        n_workers = instance.n_workers
        use_qap = self._objective_mode == "qap"

        best_value = -np.inf
        best_groups: list[tuple[int, ...]] | None = None
        all_tasks = tuple(range(instance.n_tasks))

        def worker_score(q: int, subset: tuple[int, ...]) -> float:
            if not subset:
                return 0.0
            div = diversity_of_subset(diversity, subset)
            rel = relevance_of_subset(relevance[q], subset)
            scale = (x_max - 1) if use_qap else (len(subset) - 1)
            return 2.0 * alphas[q] * div + betas[q] * scale * rel

        def recurse(q: int, remaining: tuple[int, ...], groups: list[tuple[int, ...]], score: float) -> None:
            nonlocal best_value, best_groups
            if q == n_workers:
                if score > best_value:
                    best_value = score
                    best_groups = list(groups)
                return
            max_size = min(x_max, len(remaining))
            for size in range(max_size + 1):
                for subset in combinations(remaining, size):
                    taken = set(subset)
                    rest = tuple(t for t in remaining if t not in taken)
                    groups.append(subset)
                    recurse(q + 1, rest, groups, score + worker_score(q, subset))
                    groups.pop()

        recurse(0, all_tasks, [], 0.0)
        assert best_groups is not None
        assignment = Assignment.from_indices(
            instance, [list(g) for g in best_groups]
        )
        assignment.validate(instance)
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings={},
            info={"solver": self.name, "objective_mode": self._objective_mode,
                  "optimal_value": float(best_value)},
        )

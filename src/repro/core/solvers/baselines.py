"""Non-adaptive baselines from the online deployment (Section V-C).

The paper compares adaptive HTA-GRE against:

* **HTA-GRE-DIV** — HTA-GRE with every worker forced to ``alpha=1, beta=0``
  (diversity only);
* **HTA-GRE-REL** — HTA-GRE with ``alpha=0, beta=1`` (relevance only);
* and we add a **random** dealer as a sanity floor.

Forcing weights is done by rebuilding the instance with overridden worker
weights while *reusing* the already-computed diversity/relevance matrices
(the matrices do not depend on alpha/beta).
"""

from __future__ import annotations

import time

import numpy as np

from ...rng import ensure_rng
from ..assignment import Assignment
from ..instance import HTAInstance
from ..worker import MotivationWeights, WorkerPool
from .base import Solver, SolveResult, register_solver
from .hta_gre import HTAGreSolver


def override_weights(instance: HTAInstance, weights: MotivationWeights) -> HTAInstance:
    """A copy of ``instance`` where every worker carries ``weights``.

    The cached diversity and relevance matrices are transplanted onto the
    new instance — they depend only on keyword vectors, not on alpha/beta —
    so the override is O(|W|) instead of O(|T|^2).
    """
    new_workers = WorkerPool(
        (w.with_weights(weights) for w in instance.workers),
        instance.workers.vocabulary,
    )
    overridden = HTAInstance(
        tasks=instance.tasks,
        workers=new_workers,
        x_max=instance.x_max,
        distance=instance.distance,
    )
    # cached_property stores through __dict__, which frozen dataclasses allow.
    overridden.__dict__["diversity"] = instance.diversity
    overridden.__dict__["relevance"] = instance.relevance
    return overridden


class _FixedWeightsSolver(Solver):
    """HTA-GRE run on an instance with uniform forced weights."""

    weights: MotivationWeights

    def __init__(self, lsap_method: str = "greedy", n_swap_samples: int = 1):
        self._inner = HTAGreSolver(
            lsap_method=lsap_method, n_swap_samples=n_swap_samples
        )

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        forced = override_weights(instance, self.weights)
        result = self._inner.solve(forced, rng)
        # Report the objective under the *original* instance weights so the
        # baselines are comparable to HTA-GRE on one scale.
        return SolveResult(
            assignment=result.assignment,
            objective=result.assignment.objective(instance),
            timings=result.timings,
            info={**result.info, "solver": self.name,
                  "forced_alpha": self.weights.alpha,
                  "forced_beta": self.weights.beta},
        )


@register_solver
class HTAGreDivSolver(_FixedWeightsSolver):
    """HTA-GRE-DIV: optimize task diversity only (alpha=1)."""

    name = "hta-gre-div"
    weights = MotivationWeights.diversity_only()


@register_solver
class HTAGreRelSolver(_FixedWeightsSolver):
    """HTA-GRE-REL: optimize task relevance only (beta=1)."""

    name = "hta-gre-rel"
    weights = MotivationWeights.relevance_only()


@register_solver
class RandomSolver(Solver):
    """Deal ``x_max`` random tasks to each worker — the sanity floor and the
    paper's cold-start rule (first iteration of HTA-GRE)."""

    name = "random"

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        generator = ensure_rng(rng)
        start = time.perf_counter()
        order = generator.permutation(instance.n_tasks)
        groups: list[list[int]] = []
        cursor = 0
        for _ in range(instance.n_workers):
            groups.append([int(i) for i in order[cursor : cursor + instance.x_max]])
            cursor += instance.x_max
        assignment = Assignment.from_indices(instance, groups)
        assignment.validate(instance)
        elapsed = time.perf_counter() - start
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings={"total": elapsed},
            info={"solver": self.name},
        )

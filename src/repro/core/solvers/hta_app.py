"""HTA-APP (Algorithm 1): the 1/4-approximation.

Adapts Arkin et al.'s MAXQAP algorithm to HTA: greedy matching on the
diversity graph, an auxiliary LSAP solved *optimally* with the Hungarian
algorithm (``O(|T|^3)``, the dominant cost — Lemma 3), and a randomized
per-matched-edge swap.  Approximation factor 1/4 in expectation (Theorem 3).
"""

from __future__ import annotations

import numpy as np

from ..assignment import Assignment
from ..instance import HTAInstance
from .base import Solver, SolveResult, register_solver
from .pipeline import run_qap_pipeline


@register_solver
class HTAAppSolver(Solver):
    """Algorithm 1 of the paper.

    Args:
        matching_method: Matching used on ``B`` (``"greedy"`` default).
        n_swap_samples: Swap draws to evaluate (1 = paper's algorithm).
    """

    name = "hta-app"

    def __init__(self, matching_method: str = "greedy", n_swap_samples: int = 1):
        self._matching_method = matching_method
        self._n_swap_samples = n_swap_samples

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        output = run_qap_pipeline(
            instance,
            lsap_method="hungarian",
            rng=rng,
            matching_method=self._matching_method,
            n_swap_samples=self._n_swap_samples,
        )
        assignment = Assignment.from_indices(instance, output.groups)
        assignment.validate(instance)
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings=output.timings,
            info={**output.info, "solver": self.name},
        )

"""Relevance-only greedy dealer — the bottom rung of the degradation ladder.

Under overload the serving layer sheds the quadratic diversity term
entirely: each worker just gets its ``x_max`` most relevant still-available
tasks, dealt round-robin so no worker is starved when the pool runs short.
That is ``O(|W| |T| log |T|)`` with no pairwise matrix touched at all —
cheaper than even HTA-GRE's LSAP — while still honoring C1/C2 and the
paper's relevance definition (Eq. 2, via the instance's cached relevance
matrix).

This is intentionally *not* HTA-GRE-REL: that baseline still runs the full
two-phase matching/LSAP pipeline with forced weights; this solver exists to
be as cheap as possible, quality be damned, so a degraded daemon keeps
answering under its deadline.
"""

from __future__ import annotations

import time

import numpy as np

from ..assignment import Assignment
from ..instance import HTAInstance
from .base import Solver, SolveResult, register_solver


@register_solver
class RelevanceGreedySolver(Solver):
    """Deal each worker its top-relevance tasks, round-robin, no diversity."""

    name = "greedy-relevance"

    def solve(
        self,
        instance: HTAInstance,
        rng: "int | np.random.Generator | None" = None,
    ) -> SolveResult:
        start = time.perf_counter()
        relevance = instance.relevance
        # Each worker's task positions sorted by descending relevance
        # (argsort is ascending, hence the negation).  Ties break by task
        # position, keeping the dealer fully deterministic.
        preference = np.argsort(-relevance, axis=1, kind="stable")
        cursors = [0] * instance.n_workers
        groups: list[list[int]] = [[] for _ in range(instance.n_workers)]
        taken = np.zeros(instance.n_tasks, dtype=bool)
        remaining = instance.n_tasks
        # Round-robin: one pick per worker per round so a short pool is
        # shared instead of drained by the first worker.
        for _ in range(instance.x_max):
            if remaining == 0:
                break
            for q in range(instance.n_workers):
                row = preference[q]
                cursor = cursors[q]
                while cursor < instance.n_tasks and taken[row[cursor]]:
                    cursor += 1
                cursors[q] = cursor
                if cursor >= instance.n_tasks:
                    continue
                pick = int(row[cursor])
                taken[pick] = True
                remaining -= 1
                groups[q].append(pick)
                cursors[q] = cursor + 1
                if remaining == 0:
                    break
        assignment = Assignment.from_indices(instance, groups)
        assignment.validate(instance)
        elapsed = time.perf_counter() - start
        return SolveResult(
            assignment=assignment,
            objective=assignment.objective(instance),
            timings={"total": elapsed},
            info={"solver": self.name},
        )

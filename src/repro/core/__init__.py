"""Core model: tasks, workers, motivation, the HTA problem, and its solvers."""

from .adaptive import (
    AdaptiveTrace,
    GainObservation,
    IterationRecord,
    MotivationEstimator,
    observe_gains,
    run_adaptive_loop,
)
from .assignment import Assignment
from .bandit import (
    ESTIMATORS,
    TIER_POLICIES,
    WEIGHT_POLICIES,
    MeanWeightPolicy,
    ThompsonWeightPolicy,
    TierBandit,
    UCBWeightPolicy,
    build_adaptivity,
    make_estimator,
    make_weight_policy,
)
from .distance import (
    DistanceSpec,
    angular_distance,
    check_metric_on_sample,
    euclidean_distance,
    get_distance,
    hamming_distance,
    jaccard_distance,
    pairwise_jaccard,
    pairwise_matrix,
    register_distance,
    registered_distances,
)
from .estimators import BayesianMotivationEstimator
from .instance import HTAInstance
from .keywords import Vocabulary
from .motivation import motivation, relevance, task_diversity, task_relevance
from .qap import QAPEncoding, build_encoding
from .streaming import StreamingAssigner, StreamingConfig, StreamingStats
from .task import Task, TaskGroup, TaskPool, pool_from_vectors
from .worker import MotivationWeights, Worker, WorkerPool

__all__ = [
    "ESTIMATORS",
    "TIER_POLICIES",
    "WEIGHT_POLICIES",
    "AdaptiveTrace",
    "Assignment",
    "BayesianMotivationEstimator",
    "DistanceSpec",
    "MeanWeightPolicy",
    "ThompsonWeightPolicy",
    "TierBandit",
    "UCBWeightPolicy",
    "GainObservation",
    "HTAInstance",
    "IterationRecord",
    "MotivationEstimator",
    "MotivationWeights",
    "QAPEncoding",
    "StreamingAssigner",
    "StreamingConfig",
    "StreamingStats",
    "Task",
    "TaskGroup",
    "TaskPool",
    "Vocabulary",
    "Worker",
    "WorkerPool",
    "angular_distance",
    "build_adaptivity",
    "build_encoding",
    "check_metric_on_sample",
    "euclidean_distance",
    "get_distance",
    "hamming_distance",
    "jaccard_distance",
    "make_estimator",
    "make_weight_policy",
    "motivation",
    "observe_gains",
    "pairwise_jaccard",
    "pairwise_matrix",
    "pool_from_vectors",
    "register_distance",
    "registered_distances",
    "relevance",
    "run_adaptive_loop",
    "task_diversity",
    "task_relevance",
]

"""Tasks and task pools.

A :class:`Task` is a boolean keyword vector plus descriptive metadata
(Section II of the paper).  Tasks on AMT/CrowdFlower come in *groups* (HITs of
the same kind sharing keywords); :class:`TaskGroup` captures that, and a
:class:`TaskPool` is the set ``T^i`` of tasks available at an iteration.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidInstanceError
from .keywords import Vocabulary, coerce_vector


@dataclass(frozen=True)
class Task:
    """A crowdsourcing micro-task.

    Attributes:
        task_id: Unique identifier within a pool.
        vector: Boolean keyword vector aligned with the pool's vocabulary.
        group: Optional task-group name (tasks of the same kind share one).
        title: Human-readable title.
        reward: Payment in dollars for completing the task.
        n_questions: Number of questions the task asks (>= 1).
    """

    task_id: str
    vector: np.ndarray
    group: str = ""
    title: str = ""
    reward: float = 0.05
    n_questions: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", np.asarray(self.vector, dtype=bool))
        if self.reward < 0:
            raise ValueError(f"task {self.task_id!r} has negative reward {self.reward}")
        if self.n_questions < 1:
            raise ValueError(
                f"task {self.task_id!r} must ask at least one question, "
                f"got {self.n_questions}"
            )

    def keywords(self, vocabulary: Vocabulary) -> tuple[str, ...]:
        """Keyword names present in this task under ``vocabulary``."""
        return vocabulary.decode(self.vector)

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.task_id == other.task_id


@dataclass(frozen=True)
class TaskGroup:
    """A group of same-kind tasks (an AMT task group / CrowdFlower job)."""

    name: str
    tasks: tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"task group {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)


class TaskPool:
    """The set of available tasks ``T^i`` with their stacked keyword matrix.

    Provides O(1) lookup by id and position, and a dense ``matrix`` view used
    by the vectorized distance computations.
    """

    def __init__(self, tasks: Iterable[Task], vocabulary: Vocabulary):
        self._tasks: tuple[Task, ...] = tuple(tasks)
        self._vocabulary = vocabulary
        if not self._tasks:
            raise InvalidInstanceError("a task pool cannot be empty")
        seen: dict[str, int] = {}
        rows = []
        for position, task in enumerate(self._tasks):
            if task.task_id in seen:
                raise InvalidInstanceError(f"duplicate task id {task.task_id!r} in pool")
            seen[task.task_id] = position
            rows.append(coerce_vector(task.vector, len(vocabulary)))
        self._position = seen
        self._matrix = np.vstack(rows)

    @classmethod
    def from_trusted_matrix(
        cls,
        task_ids: Sequence[str],
        matrix: np.ndarray,
        vocabulary: Vocabulary,
    ) -> "TaskPool":
        """Build a pool directly from an aligned boolean matrix.

        Skips the per-row validation of ``__init__`` — caller guarantees
        ``matrix`` is boolean, ``(len(task_ids), len(vocabulary))``-shaped,
        and the ids are unique.  Used by the zero-copy solve path, which
        reconstructs candidate pools from shared-memory rows in worker
        processes where the per-row coercion cost is pure overhead.
        """
        pool = cls.__new__(cls)
        pool._tasks = tuple(
            Task(task_id=tid, vector=row) for tid, row in zip(task_ids, matrix)
        )
        pool._vocabulary = vocabulary
        pool._position = {tid: i for i, tid in enumerate(task_ids)}
        pool._matrix = matrix
        return pool

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __contains__(self, task: object) -> bool:
        if isinstance(task, Task):
            return task.task_id in self._position
        return task in self._position

    def __getitem__(self, position: int) -> Task:
        return self._tasks[position]

    def __repr__(self) -> str:
        return f"TaskPool({len(self._tasks)} tasks, {len(self._vocabulary)} keywords)"

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    @property
    def matrix(self) -> np.ndarray:
        """Boolean matrix of shape ``(n_tasks, n_keywords)`` (row = task)."""
        return self._matrix

    def position(self, task_id: str) -> int:
        """Row index of ``task_id`` in :attr:`matrix`."""
        try:
            return self._position[task_id]
        except KeyError:
            raise KeyError(f"task {task_id!r} is not in this pool") from None

    def by_id(self, task_id: str) -> Task:
        """Return the task with ``task_id``."""
        return self._tasks[self.position(task_id)]

    def subset(self, task_ids: Sequence[str]) -> "TaskPool":
        """A new pool restricted to ``task_ids`` (order preserved)."""
        return TaskPool((self.by_id(tid) for tid in task_ids), self._vocabulary)

    def without(self, task_ids: Iterable[str]) -> "TaskPool":
        """A new pool with ``task_ids`` removed (used to drop assigned tasks)."""
        dropped = set(task_ids)
        remaining = [t for t in self._tasks if t.task_id not in dropped]
        if not remaining:
            raise InvalidInstanceError("removing these tasks would empty the pool")
        return TaskPool(remaining, self._vocabulary)

    def groups(self) -> dict[str, list[Task]]:
        """Tasks keyed by group name (ungrouped tasks fall under ``""``)."""
        grouped: dict[str, list[Task]] = {}
        for task in self._tasks:
            grouped.setdefault(task.group, []).append(task)
        return grouped


def pool_from_vectors(
    vectors: np.ndarray,
    vocabulary: Vocabulary,
    prefix: str = "t",
) -> TaskPool:
    """Build a :class:`TaskPool` from a stacked boolean matrix.

    Convenience for tests and synthetic workloads: task ids are
    ``f"{prefix}{row}"``.
    """
    matrix = np.asarray(vectors, dtype=bool)
    if matrix.ndim != 2 or matrix.shape[1] != len(vocabulary):
        raise InvalidInstanceError(
            f"expected shape (n, {len(vocabulary)}), got {matrix.shape}"
        )
    tasks = [Task(task_id=f"{prefix}{i}", vector=row) for i, row in enumerate(matrix)]
    return TaskPool(tasks, vocabulary)

"""Assignments — solver outputs — and their validation.

An :class:`Assignment` maps each worker to the set of tasks it received at
one iteration.  Constraints from Problem 1:

* C1: every worker receives at most ``x_max`` tasks;
* C2: no task is assigned to more than one worker.

Solvers return assignments in *index* form (positions into the instance's
task pool); this module converts between index and id form, validates the
constraints, and evaluates the objective.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..errors import InvalidAssignmentError
from .instance import HTAInstance
from .motivation import motivation_of_subset


@dataclass(frozen=True)
class Assignment:
    """Tasks assigned to each worker at one iteration.

    ``by_worker[worker_id]`` is the tuple of assigned task ids, in no
    particular order.  Workers may receive an empty tuple.
    """

    by_worker: Mapping[str, tuple[str, ...]]

    @classmethod
    def from_indices(
        cls,
        instance: HTAInstance,
        indices_by_worker: Sequence[Sequence[int]],
    ) -> "Assignment":
        """Build an assignment from per-worker task positions.

        ``indices_by_worker[q]`` are positions into ``instance.tasks`` for
        the q-th worker of ``instance.workers``.
        """
        if len(indices_by_worker) != instance.n_workers:
            raise InvalidAssignmentError(
                f"expected {instance.n_workers} index lists, "
                f"got {len(indices_by_worker)}"
            )
        mapping = {
            instance.workers[q].worker_id: tuple(
                instance.tasks[i].task_id for i in indices
            )
            for q, indices in enumerate(indices_by_worker)
        }
        return cls(mapping)

    def tasks_of(self, worker_id: str) -> tuple[str, ...]:
        """Task ids assigned to ``worker_id`` (empty tuple if none)."""
        return tuple(self.by_worker.get(worker_id, ()))

    def assigned_task_ids(self) -> set[str]:
        """All task ids assigned to any worker."""
        assigned: set[str] = set()
        for task_ids in self.by_worker.values():
            assigned.update(task_ids)
        return assigned

    def size(self) -> int:
        """Total number of assigned tasks."""
        return sum(len(task_ids) for task_ids in self.by_worker.values())

    def indices(self, instance: HTAInstance) -> list[list[int]]:
        """Per-worker task positions, in instance worker order."""
        return [
            [instance.tasks.position(tid) for tid in self.tasks_of(w.worker_id)]
            for w in instance.workers
        ]

    def validate(self, instance: HTAInstance) -> None:
        """Check C1, C2, and referential integrity against ``instance``.

        Raises :class:`InvalidAssignmentError` on the first violation.
        """
        known_workers = {w.worker_id for w in instance.workers}
        unknown_workers = set(self.by_worker) - known_workers
        if unknown_workers:
            raise InvalidAssignmentError(
                f"assignment mentions unknown workers: {sorted(unknown_workers)}"
            )
        seen_tasks: dict[str, str] = {}
        for worker_id, task_ids in self.by_worker.items():
            if len(task_ids) > instance.x_max:
                raise InvalidAssignmentError(
                    f"worker {worker_id!r} received {len(task_ids)} tasks, "
                    f"more than x_max={instance.x_max} (C1)"
                )
            if len(set(task_ids)) != len(task_ids):
                raise InvalidAssignmentError(
                    f"worker {worker_id!r} received duplicate tasks"
                )
            for task_id in task_ids:
                if task_id not in instance.tasks:
                    raise InvalidAssignmentError(
                        f"assignment mentions unknown task {task_id!r}"
                    )
                if task_id in seen_tasks:
                    raise InvalidAssignmentError(
                        f"task {task_id!r} assigned to both "
                        f"{seen_tasks[task_id]!r} and {worker_id!r} (C2)"
                    )
                seen_tasks[task_id] = worker_id

    def objective(self, instance: HTAInstance) -> float:
        """Total expected motivation of this assignment (Problem 1 objective)."""
        total = 0.0
        diversity = instance.diversity
        relevance = instance.relevance
        for q, worker in enumerate(instance.workers):
            idx = [
                instance.tasks.position(tid) for tid in self.tasks_of(worker.worker_id)
            ]
            total += motivation_of_subset(
                diversity, relevance[q], idx, worker.alpha, worker.beta
            )
        return total

    def per_worker_motivation(self, instance: HTAInstance) -> dict[str, float]:
        """Each worker's motivation under this assignment."""
        result: dict[str, float] = {}
        for q, worker in enumerate(instance.workers):
            idx = [
                instance.tasks.position(tid) for tid in self.tasks_of(worker.worker_id)
            ]
            result[worker.worker_id] = motivation_of_subset(
                instance.diversity, instance.relevance[q], idx, worker.alpha, worker.beta
            )
        return result

    def summary(self) -> str:
        """Short human-readable description."""
        sizes = {w: len(ts) for w, ts in self.by_worker.items()}
        return f"Assignment({self.size()} tasks over {len(sizes)} workers)"

"""Adaptive motivation estimation and the iterated assignment loop (Sec. III).

The paper's adaptivity works by *observation*: each time worker ``w``
completes task ``t_j`` (after ``t_1..t_{j-1}`` within the set assigned to
her), the platform records

* the marginal diversity gain ``sum_k d(t_j, t_k)`` over the already
  completed tasks, normalized by the best gain any still-pending assigned
  task could have delivered, and
* the relevance gain ``rel(t_j, w)``, normalized the same way.

``alpha_w^i`` / ``beta_w^i`` are the averages of the collected normalized
gains, renormalized onto the simplex (the paper requires ``alpha + beta = 1``
but averages the two streams independently; renormalization is the natural
reconciliation — see DESIGN.md).

:class:`MotivationEstimator` owns that bookkeeping; :func:`run_adaptive_loop`
drives a full offline loop — solve, simulate completions, re-estimate,
re-solve — and returns a trace used by the adaptivity ablation bench.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidInstanceError
from ..rng import ensure_rng
from .assignment import Assignment
from .instance import HTAInstance
from .motivation import (
    best_remaining_diversity_gain,
    best_remaining_relevance_gain,
    marginal_diversity_gain,
)
from .task import TaskPool
from .worker import MotivationWeights, Worker, WorkerPool

_EPS = 1e-12


def _validated_pair(pair: object, worker_id: str, what: str) -> list[float]:
    """Coerce an imported ``[sum, count]`` pair, rejecting garbage loudly."""
    try:
        total, count = float(pair[0]), float(pair[1])  # type: ignore[index]
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: malformed {what} pair {pair!r}"
        ) from exc
    if not (math.isfinite(total) and math.isfinite(count)):
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: non-finite {what} pair {pair!r}"
        )
    if total < 0.0 or count < 0.0:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: negative {what} pair {pair!r}"
        )
    return [total, count]


def _validated_raw(raw: object, worker_id: str) -> list[int]:
    """Coerce an imported ``[div_count, rel_count]`` raw-observation pair."""
    try:
        div, rel = int(raw[0]), int(raw[1])  # type: ignore[index]
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: malformed raw counts {raw!r}"
        ) from exc
    if div < 0 or rel < 0:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: negative raw counts {raw!r}"
        )
    return [div, rel]


@dataclass(frozen=True)
class GainObservation:
    """One completed task's normalized gains.

    ``None`` means the gain was unobservable: the diversity gain of the first
    completed task (no reference set yet), or a gain whose normalizer is zero
    (no pending task could have contributed anything).
    """

    diversity: float | None
    relevance: float | None


def observe_gains(
    diversity_matrix: np.ndarray,
    relevance_row: np.ndarray,
    assigned: Sequence[int],
    completed_before: Sequence[int],
    new_index: int,
) -> GainObservation:
    """Normalized gains of completing ``new_index`` (Section III).

    Args:
        diversity_matrix: Full pairwise task-diversity matrix of the pool.
        relevance_row: This worker's relevance row over the pool.
        assigned: Task indices assigned to the worker this iteration.
        completed_before: Indices already completed this iteration, in order.
        new_index: The task just completed (must be assigned and pending).
    """
    assigned_set = set(assigned)
    if new_index not in assigned_set:
        raise InvalidInstanceError(
            f"completed task {new_index} was not assigned to this worker"
        )
    done = set(completed_before)
    if new_index in done:
        raise InvalidInstanceError(f"task {new_index} was already completed")
    if not done <= assigned_set:
        raise InvalidInstanceError("completed_before contains unassigned tasks")

    remaining = [t for t in assigned if t not in done]

    div_obs: float | None = None
    if completed_before:
        gain = marginal_diversity_gain(diversity_matrix, completed_before, new_index)
        best = best_remaining_diversity_gain(
            diversity_matrix, completed_before, remaining
        )
        if best > _EPS:
            div_obs = min(gain / best, 1.0)

    rel_obs: float | None = None
    best_rel = best_remaining_relevance_gain(relevance_row, remaining)
    if best_rel > _EPS:
        rel_obs = min(float(relevance_row[new_index]) / best_rel, 1.0)

    return GainObservation(diversity=div_obs, relevance=rel_obs)


class MotivationEstimator:
    """Per-worker accumulation of gain observations into (alpha, beta).

    Args:
        decay: Multiplicative decay applied to past observations each time a
            new one arrives (1.0 = the paper's plain average; < 1 weights
            recent behaviour more — an extension for drifting preferences).
        prior: Weights returned before any observation (cold start).
    """

    def __init__(
        self,
        decay: float = 1.0,
        prior: MotivationWeights | None = None,
    ):
        if not 0.0 < decay <= 1.0:
            raise InvalidInstanceError(f"decay must be in (0, 1], got {decay}")
        self._decay = decay
        self._prior = prior or MotivationWeights.balanced()
        # Per worker: [weighted sum of gains, weighted count] per factor.
        self._diversity: dict[str, list[float]] = {}
        self._relevance: dict[str, list[float]] = {}
        # Per worker: [raw diversity obs, raw relevance obs] — never decayed,
        # so cold-start "sufficient input" checks don't fire late.
        self._raw: dict[str, list[int]] = {}

    def record(self, worker_id: str, observation: GainObservation) -> None:
        """Fold one observation into the worker's running averages."""
        if observation.diversity is None and observation.relevance is None:
            return
        raw = self._raw.setdefault(worker_id, [0, 0])
        if observation.diversity is not None:
            self._fold(self._diversity, worker_id, observation.diversity)
            raw[0] += 1
        if observation.relevance is not None:
            self._fold(self._relevance, worker_id, observation.relevance)
            raw[1] += 1

    def _fold(self, store: dict[str, list[float]], worker_id: str, gain: float) -> None:
        total, count = store.get(worker_id, [0.0, 0.0])
        store[worker_id] = [total * self._decay + gain, count * self._decay + 1.0]

    def observation_count(self, worker_id: str) -> int:
        """Number of raw observations recorded for ``worker_id`` (undecayed)."""
        raw = self._raw.get(worker_id)
        if raw is None:
            return 0
        return max(raw[0], raw[1])

    def effective_count(self, worker_id: str) -> float:
        """The decay-weighted observation mass (what the averages divide by)."""
        div = self._diversity.get(worker_id)
        rel = self._relevance.get(worker_id)
        return max(div[1] if div else 0.0, rel[1] if rel else 0.0)

    def average_gains(self, worker_id: str) -> tuple[float | None, float | None]:
        """The (possibly decayed) mean diversity and relevance gains."""
        div = self._diversity.get(worker_id)
        rel = self._relevance.get(worker_id)
        mean_div = div[0] / div[1] if div and div[1] > _EPS else None
        mean_rel = rel[0] / rel[1] if rel and rel[1] > _EPS else None
        return mean_div, mean_rel

    def weights_for(self, worker_id: str) -> MotivationWeights:
        """Current (alpha, beta) estimate for ``worker_id``.

        Falls back to the prior when nothing has been observed; when only one
        factor has observations, the other defaults to the prior's share of
        the unobserved factor (keeping the estimate on the simplex).
        """
        mean_div, mean_rel = self.average_gains(worker_id)
        if mean_div is None and mean_rel is None:
            return self._prior
        if mean_div is None:
            mean_div = self._prior.alpha
        if mean_rel is None:
            mean_rel = self._prior.beta
        return MotivationWeights.from_gains(mean_div, mean_rel)

    def reset(self, worker_id: str | None = None) -> None:
        """Forget observations for one worker (or all of them)."""
        if worker_id is None:
            self._diversity.clear()
            self._relevance.clear()
            self._raw.clear()
        else:
            self._diversity.pop(worker_id, None)
            self._relevance.pop(worker_id, None)
            self._raw.pop(worker_id, None)

    def export_worker(self, worker_id: str) -> dict:
        """Portable per-worker slice of :meth:`state_dict` (shard handoff).

        Only the worker's own running averages travel; decay and prior are
        configuration and must already match on the importing side.
        """
        state: dict = {}
        diversity = self._diversity.get(worker_id)
        relevance = self._relevance.get(worker_id)
        raw = self._raw.get(worker_id)
        if diversity is not None:
            state["diversity"] = list(diversity)
        if relevance is not None:
            state["relevance"] = list(relevance)
        if raw is not None:
            state["raw"] = list(raw)
        return state

    def import_worker(self, worker_id: str, state: dict) -> None:
        """Adopt one worker's :meth:`export_worker` slice, replacing any
        stale entries a previous registration epoch may have left behind.

        Raises:
            InvalidInstanceError: on malformed, negative, or non-finite pairs.
        """
        self._diversity.pop(worker_id, None)
        self._relevance.pop(worker_id, None)
        self._raw.pop(worker_id, None)
        diversity = relevance = None
        if "diversity" in state:
            diversity = _validated_pair(state["diversity"], worker_id, "diversity")
        if "relevance" in state:
            relevance = _validated_pair(state["relevance"], worker_id, "relevance")
        if diversity is not None:
            self._diversity[worker_id] = diversity
        if relevance is not None:
            self._relevance[worker_id] = relevance
        if "raw" in state:
            self._raw[worker_id] = _validated_raw(state["raw"], worker_id)
        elif diversity is not None or relevance is not None:
            # Pre-raw-count exporters: fall back to the effective counts
            # (exact when decay == 1, a floor otherwise).
            self._raw[worker_id] = [
                int(round(diversity[1])) if diversity else 0,
                int(round(relevance[1])) if relevance else 0,
            ]

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every worker's running averages."""
        return {
            "decay": self._decay,
            "prior": [self._prior.alpha, self._prior.beta],
            "diversity": {w: list(v) for w, v in self._diversity.items()},
            "relevance": {w: list(v) for w, v in self._relevance.items()},
            "raw": {w: list(v) for w, v in self._raw.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, replacing current state."""
        self._decay = float(state["decay"])
        prior = state["prior"]
        self._prior = MotivationWeights(float(prior[0]), float(prior[1]))
        self._diversity = {
            w: [float(v[0]), float(v[1])] for w, v in state["diversity"].items()
        }
        self._relevance = {
            w: [float(v[0]), float(v[1])] for w, v in state["relevance"].items()
        }
        raw = state.get("raw")
        if raw is not None:
            self._raw = {w: [int(v[0]), int(v[1])] for w, v in raw.items()}
        else:
            # Pre-raw-count snapshots: derive from the effective counts.
            self._raw = {}
            for w in set(self._diversity) | set(self._relevance):
                div = self._diversity.get(w)
                rel = self._relevance.get(w)
                self._raw[w] = [
                    int(round(div[1])) if div else 0,
                    int(round(rel[1])) if rel else 0,
                ]


# ---------------------------------------------------------------------------
# Offline adaptive loop.
# ---------------------------------------------------------------------------

#: Given (worker, assigned indices, instance, rng), return the indices the
#: worker completes, in completion order (may be a strict subset).
CompletionPolicy = Callable[
    [Worker, Sequence[int], HTAInstance, np.random.Generator], list[int]
]


def complete_all_in_order(
    worker: Worker,
    assigned: Sequence[int],
    instance: HTAInstance,
    rng: np.random.Generator,
) -> list[int]:
    """Default policy: complete every assigned task, in assignment order."""
    return list(assigned)


@dataclass(frozen=True)
class IterationRecord:
    """What happened during one iteration of the adaptive loop."""

    iteration: int
    assignment: Assignment
    objective: float
    weights_before: dict[str, MotivationWeights]
    weights_after: dict[str, MotivationWeights]
    completed: dict[str, list[str]]


@dataclass(frozen=True)
class AdaptiveTrace:
    """Full history of an adaptive run."""

    records: list[IterationRecord]

    @property
    def n_iterations(self) -> int:
        return len(self.records)

    def objectives(self) -> list[float]:
        return [r.objective for r in self.records]

    def total_completed(self) -> int:
        return sum(
            len(tasks) for r in self.records for tasks in r.completed.values()
        )

    def final_weights(self) -> dict[str, MotivationWeights]:
        return dict(self.records[-1].weights_after) if self.records else {}


def run_adaptive_loop(
    tasks: TaskPool,
    workers: WorkerPool,
    x_max: int,
    solver: "object",
    n_iterations: int,
    completion_policy: CompletionPolicy = complete_all_in_order,
    estimator: MotivationEstimator | None = None,
    rng: "int | np.random.Generator | None" = None,
    weight_policy: "object | None" = None,
) -> AdaptiveTrace:
    """Drive the solve / observe / re-estimate / re-solve loop (Section III).

    Assigned tasks are dropped from the pool after each iteration ("once
    assigned, a task is dropped from subsequent iterations").  The loop stops
    early when the pool can no longer feed a full iteration.

    Args:
        solver: Any object with ``solve(instance, rng) -> SolveResult``.
        completion_policy: How each worker consumes its assignment (defaults
            to completing everything in order; pass a behavioural policy from
            :mod:`repro.crowd.behavior` for realistic traces).
        estimator: Bring-your-own estimator (e.g. with decay); a fresh plain
            averager is used by default.
        weight_policy: Optional bandit policy (see :mod:`repro.core.bandit`)
            with ``weights_for(estimator, worker_id)``; when given, it decides
            the solve-time weights instead of the estimator's mean.
    """
    generator = ensure_rng(rng)
    estimator = estimator or MotivationEstimator()
    current_tasks = tasks
    current_workers = workers
    records: list[IterationRecord] = []

    for iteration in range(n_iterations):
        if len(current_tasks) < 1:
            break
        instance = HTAInstance(current_tasks, current_workers, x_max)
        weights_before = {
            w.worker_id: w.weights for w in current_workers
        }
        result = solver.solve(instance, generator)
        assignment = result.assignment

        completed: dict[str, list[str]] = {}
        for q, worker in enumerate(current_workers):
            assigned_ids = assignment.tasks_of(worker.worker_id)
            assigned_idx = [current_tasks.position(tid) for tid in assigned_ids]
            order = completion_policy(worker, assigned_idx, instance, generator)
            done_so_far: list[int] = []
            for task_index in order:
                observation = observe_gains(
                    instance.diversity,
                    instance.relevance[q],
                    assigned_idx,
                    done_so_far,
                    task_index,
                )
                estimator.record(worker.worker_id, observation)
                done_so_far.append(task_index)
            completed[worker.worker_id] = [
                current_tasks[i].task_id for i in done_so_far
            ]

        if weight_policy is not None:
            updated = [
                w.with_weights(weight_policy.weights_for(estimator, w.worker_id))
                for w in current_workers
            ]
        else:
            updated = [
                w.with_weights(estimator.weights_for(w.worker_id))
                for w in current_workers
            ]
        current_workers = current_workers.with_updated(updated)
        weights_after = {w.worker_id: w.weights for w in current_workers}

        records.append(
            IterationRecord(
                iteration=iteration,
                assignment=assignment,
                objective=result.objective,
                weights_before=weights_before,
                weights_after=weights_after,
                completed=completed,
            )
        )

        assigned_ids = assignment.assigned_task_ids()
        if assigned_ids >= {t.task_id for t in current_tasks}:
            break
        if assigned_ids:
            current_tasks = current_tasks.without(assigned_ids)

    return AdaptiveTrace(records)

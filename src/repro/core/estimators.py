"""Alternative motivation estimators (extensions of Section III).

The paper's estimator is a plain average of normalized gains
(:class:`repro.core.adaptive.MotivationEstimator`).  This module adds a
**Bayesian** variant: each completed task casts a fractional "diversity
vote" ``v = g_div / (g_div + g_rel)`` and the worker's latent alpha carries
a Beta posterior over those votes.  Benefits over the plain average:

* a principled cold start (the prior *is* the estimate at zero data);
* credible intervals — the platform can tell "confidently balanced" apart
  from "no idea yet";
* Thompson sampling (:meth:`BayesianMotivationEstimator.sample_weights`)
  for exploration: early iterations draw alpha from the posterior instead
  of committing to its mean, which keeps assignment diverse while evidence
  accumulates.

Estimators are duck-typed: anything with ``record(worker_id, observation)``
and ``weights_for(worker_id)`` plugs into
:func:`repro.core.adaptive.run_adaptive_loop` and
:class:`repro.crowd.service.AssignmentService`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidInstanceError
from .adaptive import GainObservation
from .worker import MotivationWeights

_EPS = 1e-12


class BayesianMotivationEstimator:
    """Beta-posterior estimator of each worker's diversity preference.

    Args:
        prior_alpha: Beta prior pseudo-count for the diversity side.
        prior_beta: Beta prior pseudo-count for the relevance side.
            The default ``(1, 1)`` (uniform prior) gives a posterior-mean
            cold start of 0.5, matching the paper's balanced cold start.
        decay: Multiplicative decay applied to the accumulated vote mass
            each time a new vote lands (1.0 = the pure conjugate update;
            < 1 forgets stale evidence so the posterior can track drifting
            preferences — the regime where Thompson/UCB pay off).
    """

    def __init__(
        self,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
        decay: float = 1.0,
    ):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise InvalidInstanceError(
                f"prior pseudo-counts must be positive, got "
                f"({prior_alpha}, {prior_beta})"
            )
        if not 0.0 < decay <= 1.0:
            raise InvalidInstanceError(f"decay must be in (0, 1], got {decay}")
        self._prior = (prior_alpha, prior_beta)
        self._decay = decay
        self._counts: dict[str, list[float]] = {}
        # Raw (undecayed) number of votes folded per worker.
        self._raw: dict[str, int] = {}

    # -- interface shared with MotivationEstimator ---------------------------

    def record(self, worker_id: str, observation: GainObservation) -> None:
        """Fold one observation in as a fractional diversity vote.

        Only *complete* observations (both factors measurable) vote: a
        ``None`` factor means the platform could not observe it — e.g. no
        pending task had any relevance to normalize against — and treating
        that as a zero or full vote would flood the posterior with
        artefacts of the display composition rather than worker behaviour.
        """
        div, rel = observation.diversity, observation.relevance
        if div is None or rel is None:
            return
        total = div + rel
        if total <= _EPS:
            return
        vote = div / total
        counts = self._counts.setdefault(worker_id, [0.0, 0.0])
        counts[0] = counts[0] * self._decay + vote
        counts[1] = counts[1] * self._decay + (1.0 - vote)
        self._raw[worker_id] = self._raw.get(worker_id, 0) + 1

    def weights_for(self, worker_id: str) -> MotivationWeights:
        """Posterior-mean (alpha, beta)."""
        a, b = self._posterior(worker_id)
        mean = a / (a + b)
        return MotivationWeights(mean, 1.0 - mean)

    def reset(self, worker_id: str | None = None) -> None:
        if worker_id is None:
            self._counts.clear()
            self._raw.clear()
        else:
            self._counts.pop(worker_id, None)
            self._raw.pop(worker_id, None)

    def observation_count(self, worker_id: str) -> int:
        """Number of raw votes recorded for ``worker_id`` (undecayed)."""
        return self._raw.get(worker_id, 0)

    # -- snapshot / handoff parity with MotivationEstimator --------------------

    def export_worker(self, worker_id: str) -> dict:
        """Portable per-worker slice of :meth:`state_dict` (shard handoff).

        Only the worker's accumulated vote mass travels; prior and decay are
        configuration and must already match on the importing side.
        """
        state: dict = {}
        counts = self._counts.get(worker_id)
        if counts is not None:
            state["counts"] = list(counts)
        raw = self._raw.get(worker_id)
        if raw is not None:
            state["raw"] = raw
        return state

    def import_worker(self, worker_id: str, state: dict) -> None:
        """Adopt one worker's :meth:`export_worker` slice, replacing any
        stale entries a previous registration epoch may have left behind.

        Raises:
            InvalidInstanceError: on malformed, negative, or non-finite mass.
        """
        self._counts.pop(worker_id, None)
        self._raw.pop(worker_id, None)
        if "counts" in state:
            self._counts[worker_id] = _validated_counts(
                state["counts"], worker_id
            )
        if "raw" in state:
            raw = state["raw"]
            try:
                raw = int(raw)
            except (TypeError, ValueError) as exc:
                raise InvalidInstanceError(
                    f"estimator import for {worker_id!r}: malformed raw "
                    f"count {state['raw']!r}"
                ) from exc
            if raw < 0:
                raise InvalidInstanceError(
                    f"estimator import for {worker_id!r}: negative raw "
                    f"count {raw}"
                )
            self._raw[worker_id] = raw
        elif "counts" in state:
            # Pre-raw exporters: the undecayed count is at least the mass.
            counts = self._counts[worker_id]
            self._raw[worker_id] = int(round(counts[0] + counts[1]))

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every worker's vote mass."""
        return {
            "prior": [self._prior[0], self._prior[1]],
            "decay": self._decay,
            "counts": {w: list(v) for w, v in self._counts.items()},
            "raw": dict(self._raw),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, replacing current state."""
        prior = state["prior"]
        self._prior = (float(prior[0]), float(prior[1]))
        self._decay = float(state.get("decay", 1.0))
        self._counts = {
            w: [float(v[0]), float(v[1])] for w, v in state["counts"].items()
        }
        raw = state.get("raw")
        if raw is not None:
            self._raw = {w: int(v) for w, v in raw.items()}
        else:
            self._raw = {
                w: int(round(v[0] + v[1])) for w, v in self._counts.items()
            }

    # -- Bayesian extras --------------------------------------------------------

    def credible_interval(
        self, worker_id: str, mass: float = 0.9
    ) -> tuple[float, float]:
        """Central credible interval for the worker's latent alpha.

        Uses the normal approximation to the Beta posterior, clipped to
        [0, 1] — accurate enough for the platform's "is this worker's
        preference pinned down yet?" decisions.
        """
        if not 0.0 < mass < 1.0:
            raise InvalidInstanceError(f"mass must be in (0, 1), got {mass}")
        a, b = self._posterior(worker_id)
        mean = a / (a + b)
        variance = a * b / ((a + b) ** 2 * (a + b + 1.0))
        # Two-sided normal quantile via the error function.
        z = math.sqrt(2.0) * _erfinv(mass)
        half_width = z * math.sqrt(variance)
        return (
            max(0.0, mean - half_width),
            min(1.0, mean + half_width),
        )

    def sample_weights(
        self, worker_id: str, rng: np.random.Generator
    ) -> MotivationWeights:
        """Thompson sample: draw alpha from the posterior."""
        a, b = self._posterior(worker_id)
        alpha = float(rng.beta(a, b))
        return MotivationWeights(alpha, 1.0 - alpha)

    def _posterior(self, worker_id: str) -> tuple[float, float]:
        counts = self._counts.get(worker_id, [0.0, 0.0])
        return self._prior[0] + counts[0], self._prior[1] + counts[1]


def _validated_counts(pair: object, worker_id: str) -> list[float]:
    """Coerce an imported ``[div_mass, rel_mass]`` pair, rejecting garbage."""
    try:
        div, rel = float(pair[0]), float(pair[1])  # type: ignore[index]
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: malformed counts {pair!r}"
        ) from exc
    if not (math.isfinite(div) and math.isfinite(rel)):
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: non-finite counts {pair!r}"
        )
    if div < 0.0 or rel < 0.0:
        raise InvalidInstanceError(
            f"estimator import for {worker_id!r}: negative counts {pair!r}"
        )
    return [div, rel]


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-3 accurate)."""
    if not -1.0 < x < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1), got {x}")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    inner = first * first - ln_term / a
    return math.copysign(math.sqrt(math.sqrt(inner) - first), x)

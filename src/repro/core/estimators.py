"""Alternative motivation estimators (extensions of Section III).

The paper's estimator is a plain average of normalized gains
(:class:`repro.core.adaptive.MotivationEstimator`).  This module adds a
**Bayesian** variant: each completed task casts a fractional "diversity
vote" ``v = g_div / (g_div + g_rel)`` and the worker's latent alpha carries
a Beta posterior over those votes.  Benefits over the plain average:

* a principled cold start (the prior *is* the estimate at zero data);
* credible intervals — the platform can tell "confidently balanced" apart
  from "no idea yet";
* Thompson sampling (:meth:`BayesianMotivationEstimator.sample_weights`)
  for exploration: early iterations draw alpha from the posterior instead
  of committing to its mean, which keeps assignment diverse while evidence
  accumulates.

Estimators are duck-typed: anything with ``record(worker_id, observation)``
and ``weights_for(worker_id)`` plugs into
:func:`repro.core.adaptive.run_adaptive_loop` and
:class:`repro.crowd.service.AssignmentService`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidInstanceError
from .adaptive import GainObservation
from .worker import MotivationWeights

_EPS = 1e-12


class BayesianMotivationEstimator:
    """Beta-posterior estimator of each worker's diversity preference.

    Args:
        prior_alpha: Beta prior pseudo-count for the diversity side.
        prior_beta: Beta prior pseudo-count for the relevance side.
            The default ``(1, 1)`` (uniform prior) gives a posterior-mean
            cold start of 0.5, matching the paper's balanced cold start.
    """

    def __init__(self, prior_alpha: float = 1.0, prior_beta: float = 1.0):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise InvalidInstanceError(
                f"prior pseudo-counts must be positive, got "
                f"({prior_alpha}, {prior_beta})"
            )
        self._prior = (prior_alpha, prior_beta)
        self._counts: dict[str, list[float]] = {}

    # -- interface shared with MotivationEstimator ---------------------------

    def record(self, worker_id: str, observation: GainObservation) -> None:
        """Fold one observation in as a fractional diversity vote.

        Only *complete* observations (both factors measurable) vote: a
        ``None`` factor means the platform could not observe it — e.g. no
        pending task had any relevance to normalize against — and treating
        that as a zero or full vote would flood the posterior with
        artefacts of the display composition rather than worker behaviour.
        """
        div, rel = observation.diversity, observation.relevance
        if div is None or rel is None:
            return
        total = div + rel
        if total <= _EPS:
            return
        vote = div / total
        counts = self._counts.setdefault(worker_id, [0.0, 0.0])
        counts[0] += vote
        counts[1] += 1.0 - vote

    def weights_for(self, worker_id: str) -> MotivationWeights:
        """Posterior-mean (alpha, beta)."""
        a, b = self._posterior(worker_id)
        mean = a / (a + b)
        return MotivationWeights(mean, 1.0 - mean)

    def reset(self, worker_id: str | None = None) -> None:
        if worker_id is None:
            self._counts.clear()
        else:
            self._counts.pop(worker_id, None)

    # -- Bayesian extras --------------------------------------------------------

    def observation_count(self, worker_id: str) -> int:
        counts = self._counts.get(worker_id)
        return int(round(counts[0] + counts[1])) if counts else 0

    def credible_interval(
        self, worker_id: str, mass: float = 0.9
    ) -> tuple[float, float]:
        """Central credible interval for the worker's latent alpha.

        Uses the normal approximation to the Beta posterior, clipped to
        [0, 1] — accurate enough for the platform's "is this worker's
        preference pinned down yet?" decisions.
        """
        if not 0.0 < mass < 1.0:
            raise InvalidInstanceError(f"mass must be in (0, 1), got {mass}")
        a, b = self._posterior(worker_id)
        mean = a / (a + b)
        variance = a * b / ((a + b) ** 2 * (a + b + 1.0))
        # Two-sided normal quantile via the error function.
        z = math.sqrt(2.0) * _erfinv(mass)
        half_width = z * math.sqrt(variance)
        return (
            max(0.0, mean - half_width),
            min(1.0, mean + half_width),
        )

    def sample_weights(
        self, worker_id: str, rng: np.random.Generator
    ) -> MotivationWeights:
        """Thompson sample: draw alpha from the posterior."""
        a, b = self._posterior(worker_id)
        alpha = float(rng.beta(a, b))
        return MotivationWeights(alpha, 1.0 - alpha)

    def _posterior(self, worker_id: str) -> tuple[float, float]:
        counts = self._counts.get(worker_id, [0.0, 0.0])
        return self._prior[0] + counts[0], self._prior[1] + counts[1]


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-3 accurate)."""
    if not -1.0 < x < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1), got {x}")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    inner = first * first - ln_term / a
    return math.copysign(math.sqrt(math.sqrt(inner) - first), x)

"""The HTA -> MAXQAP encoding (Section IV-A, Eqs. 4-8).

HTA is rewritten as a Maximum Quadratic Assignment Problem over three
``n x n`` matrices (``n`` = number of QAP vertices):

* ``A`` (Eq. 4): adjacency matrix of ``|W|`` disjoint cliques of ``x_max``
  vertices — one clique per worker, edges weighted by that worker's alpha —
  plus isolated vertices for the unassigned slots;
* ``B`` (Eq. 5): the complete task graph weighted by pairwise diversity;
* ``C`` (Eq. 6): the linear relevance part, ``c[k, l] = beta_q *
  rel(w_q, t_k) * (x_max - 1)`` when column ``l`` belongs to worker ``q``'s
  clique.

A permutation ``pi`` maps task ``k`` to vertex ``pi(k)``; tasks landing in
worker ``q``'s clique form ``T_wq`` (Eq. 7), and the QAP objective equals the
HTA objective exactly (Eq. 8) — verified by ``tests/test_qap.py``.

Note on Eq. 6: the paper's guard ``l <= |T| - |W| * x_max`` contradicts its
own Fig. 1 (where columns 1..6 are non-zero for ``|T|=8, |W|=2, x_max=3``);
the consistent guard is ``l <= |W| * x_max``, which we use.

Rather than materializing ``A`` and ``C`` densely (the algorithms never need
them), the encoding stores the clique structure: ``worker_of_vertex`` and the
column degree ``deg_a``.  Dense matrices are available from
:meth:`QAPEncoding.dense_a` / :meth:`QAPEncoding.dense_c` for tests and for
reproducing the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import InvalidInstanceError
from .instance import HTAInstance


@dataclass(frozen=True)
class QAPEncoding:
    """A MAXQAP instance equivalent to an HTA instance.

    Attributes:
        n_vertices: Number of QAP vertices, ``max(|T|, |W| * x_max)``.
        n_real_tasks: Number of genuine tasks (rows beyond this index are
            zero-padding dummies standing in for empty slots).
        n_workers: Number of workers.
        x_max: Per-worker capacity.
        diversity: Padded ``(n, n)`` matrix ``B`` (Eq. 5); dummy rows/columns
            are all zero, which makes a dummy equivalent to an empty slot.
        relevance_by_worker: Padded ``(n, n_workers)`` matrix of raw
            ``rel(w_q, t_k)`` values (dummy rows zero).
        alphas: Per-worker alpha weights.
        betas: Per-worker beta weights.
    """

    n_vertices: int
    n_real_tasks: int
    n_workers: int
    x_max: int
    diversity: np.ndarray
    relevance_by_worker: np.ndarray
    alphas: np.ndarray
    betas: np.ndarray

    @cached_property
    def worker_of_vertex(self) -> np.ndarray:
        """Worker owning each vertex's clique, or ``-1`` for isolated ones."""
        owners = np.full(self.n_vertices, -1, dtype=np.intp)
        clique_span = self.n_workers * self.x_max
        owners[:clique_span] = np.arange(clique_span) // self.x_max
        return owners

    @cached_property
    def deg_a(self) -> np.ndarray:
        """Column sums of ``A``: ``alpha_q * (x_max - 1)`` on clique columns.

        This is the ``degA_l`` quantity of Algorithm 1 line 4; with the
        clique structure it collapses to a closed form.
        """
        degrees = np.zeros(self.n_vertices)
        owners = self.worker_of_vertex
        clique = owners >= 0
        degrees[clique] = self.alphas[owners[clique]] * (self.x_max - 1)
        return degrees

    @cached_property
    def c_matrix_compact(self) -> np.ndarray:
        """``(n, n_workers)`` compact form of ``C``: column ``q`` holds
        ``beta_q * rel(w_q, t_k) * (x_max - 1)``."""
        scale = self.betas * (self.x_max - 1)
        return self.relevance_by_worker * scale[None, :]

    def dense_a(self) -> np.ndarray:
        """Materialize ``A`` (Eq. 4) — for tests and worked examples only."""
        a = np.zeros((self.n_vertices, self.n_vertices))
        for q in range(self.n_workers):
            start = q * self.x_max
            stop = start + self.x_max
            block = np.full((self.x_max, self.x_max), self.alphas[q])
            np.fill_diagonal(block, 0.0)
            a[start:stop, start:stop] = block
        return a

    def dense_c(self) -> np.ndarray:
        """Materialize ``C`` (Eq. 6, corrected guard) — for tests/examples."""
        c = np.zeros((self.n_vertices, self.n_vertices))
        owners = self.worker_of_vertex
        compact = self.c_matrix_compact
        for l in range(self.n_vertices):
            if owners[l] >= 0:
                c[:, l] = compact[:, owners[l]]
        return c

    def dense_b(self) -> np.ndarray:
        """The padded diversity matrix ``B`` (Eq. 5)."""
        return self.diversity

    def profit_matrix(self, matched_weight: np.ndarray) -> np.ndarray:
        """The auxiliary LSAP profits ``f[k, l] = bM(t_k) * degA_l + c[k, l]``
        (Algorithm 1 line 10), without materializing ``C``."""
        if matched_weight.shape != (self.n_vertices,):
            raise InvalidInstanceError(
                f"matched_weight must have shape ({self.n_vertices},), "
                f"got {matched_weight.shape}"
            )
        f = np.outer(matched_weight, self.deg_a)
        owners = self.worker_of_vertex
        clique_cols = np.flatnonzero(owners >= 0)
        f[:, clique_cols] += self.c_matrix_compact[:, owners[clique_cols]]
        return f

    def objective(self, permutation: np.ndarray) -> float:
        """Eq. 8's right-hand side for ``permutation`` (vertex of each task).

        Computed through the clique structure:
        ``sum_q [2 alpha_q TD(T_q) + beta_q (x_max-1) TR(T_q, w_q)]`` — which
        *is* the HTA objective, establishing the equivalence the tests check
        against a literal dense-matrix evaluation.
        """
        groups = self.tasks_by_worker(permutation)
        total = 0.0
        for q, tasks in enumerate(groups):
            if not tasks:
                continue
            idx = np.asarray(tasks, dtype=np.intp)
            sub = self.diversity[np.ix_(idx, idx)]
            diversity = float(np.triu(sub, k=1).sum())
            rel_total = float(self.relevance_by_worker[idx, q].sum())
            total += (
                2.0 * self.alphas[q] * diversity
                + self.betas[q] * (self.x_max - 1) * rel_total
            )
        return total

    def objective_dense(self, permutation: np.ndarray) -> float:
        """Literal Eq. 8 evaluation with dense ``A`` and ``C`` (test oracle).

        ``sum_{k != l} a[pi(k), pi(l)] * b[k, l] + sum_k c[k, pi(k)]``.
        Quadratic memory — only for small instances.
        """
        pi = np.asarray(permutation, dtype=np.intp)
        a = self.dense_a()
        c = self.dense_c()
        quadratic = float((a[np.ix_(pi, pi)] * self.diversity).sum())
        # a's diagonal is zero, so the k == l terms vanish automatically.
        linear = float(c[np.arange(self.n_vertices), pi].sum())
        return quadratic + linear

    def tasks_by_worker(self, permutation: np.ndarray) -> list[list[int]]:
        """Decode a permutation into per-worker real-task indices (Eq. 7)."""
        pi = np.asarray(permutation, dtype=np.intp)
        if pi.shape != (self.n_vertices,):
            raise InvalidInstanceError(
                f"permutation must have length {self.n_vertices}, got {pi.shape}"
            )
        if len(np.unique(pi)) != self.n_vertices:
            raise InvalidInstanceError("permutation has repeated vertices")
        owners = self.worker_of_vertex
        groups: list[list[int]] = [[] for _ in range(self.n_workers)]
        for task, vertex in enumerate(pi[: self.n_real_tasks]):
            owner = owners[vertex]
            if owner >= 0:
                groups[owner].append(task)
        return groups


def build_encoding(instance: HTAInstance) -> QAPEncoding:
    """Encode ``instance`` as MAXQAP matrices (Eqs. 4-6).

    When ``|T| < |W| * x_max`` the task side is padded with zero-profit dummy
    vertices; a dummy occupying a clique slot contributes nothing, exactly
    like the empty slot it represents, so objectives are unchanged.
    """
    n_tasks = instance.n_tasks
    n_vertices = max(n_tasks, instance.capacity)
    diversity = instance.diversity
    relevance = instance.relevance.T  # (n_tasks, n_workers)
    if n_vertices > n_tasks:
        pad = n_vertices - n_tasks
        diversity = np.pad(diversity, ((0, pad), (0, pad)))
        relevance = np.pad(relevance, ((0, pad), (0, 0)))
    return QAPEncoding(
        n_vertices=n_vertices,
        n_real_tasks=n_tasks,
        n_workers=instance.n_workers,
        x_max=instance.x_max,
        diversity=diversity,
        relevance_by_worker=relevance,
        alphas=instance.alphas(),
        betas=instance.betas(),
    )

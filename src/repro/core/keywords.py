"""Keyword vocabularies and boolean keyword vectors.

The paper (Section II) represents every task and every worker as a boolean
vector over a shared keyword set ``S = {s_1, ..., s_R}``.  A
:class:`Vocabulary` fixes the ordering of keywords so that vectors built from
keyword *names* are always comparable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class Vocabulary:
    """An ordered, immutable set of keywords.

    Maps keyword names to vector positions and back.  Tasks and workers built
    against the same vocabulary have aligned boolean vectors.

    >>> vocab = Vocabulary(["audio", "english", "news"])
    >>> vocab.encode(["news", "audio"]).tolist()
    [True, False, True]
    >>> vocab.decode(vocab.encode(["news", "audio"]))
    ('audio', 'news')
    """

    __slots__ = ("_keywords", "_index")

    def __init__(self, keywords: Iterable[str]):
        words = tuple(keywords)
        if not words:
            raise ValueError("a vocabulary needs at least one keyword")
        index: dict[str, int] = {}
        for position, word in enumerate(words):
            if not isinstance(word, str) or not word:
                raise ValueError(f"keywords must be non-empty strings, got {word!r}")
            if word in index:
                raise ValueError(f"duplicate keyword in vocabulary: {word!r}")
            index[word] = position
        self._keywords = words
        self._index = index

    def __len__(self) -> int:
        return len(self._keywords)

    def __iter__(self):
        return iter(self._keywords)

    def __contains__(self, word: object) -> bool:
        return word in self._index

    def __repr__(self) -> str:
        preview = ", ".join(self._keywords[:4])
        suffix = ", ..." if len(self._keywords) > 4 else ""
        return f"Vocabulary({len(self._keywords)} keywords: {preview}{suffix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._keywords == other._keywords

    def __hash__(self) -> int:
        return hash(self._keywords)

    @property
    def keywords(self) -> tuple[str, ...]:
        """The keywords, in vector order."""
        return self._keywords

    def position(self, word: str) -> int:
        """Return the vector position of ``word``.

        Raises :class:`KeyError` for unknown keywords.
        """
        return self._index[word]

    def encode(self, words: Iterable[str]) -> np.ndarray:
        """Build a boolean vector with True at each keyword in ``words``."""
        vector = np.zeros(len(self._keywords), dtype=bool)
        for word in words:
            vector[self._index[word]] = True
        return vector

    def decode(self, vector: Sequence[bool] | np.ndarray) -> tuple[str, ...]:
        """Return the keyword names present in a boolean ``vector``."""
        array = np.asarray(vector, dtype=bool)
        if array.shape != (len(self._keywords),):
            raise ValueError(
                f"vector length {array.shape} does not match vocabulary "
                f"size {len(self._keywords)}"
            )
        return tuple(self._keywords[i] for i in np.flatnonzero(array))

    def subset_vector(self, words: Iterable[str]) -> np.ndarray:
        """Alias of :meth:`encode`, kept for symmetry with older call sites."""
        return self.encode(words)


def coerce_vector(vector: Sequence[bool] | np.ndarray, size: int) -> np.ndarray:
    """Validate and normalize a boolean keyword vector of length ``size``."""
    array = np.asarray(vector)
    if array.dtype != bool:
        if not np.isin(array, (0, 1)).all():
            raise ValueError("keyword vectors must be boolean (0/1) valued")
        array = array.astype(bool)
    if array.shape != (size,):
        raise ValueError(f"expected a vector of length {size}, got shape {array.shape}")
    return array

"""Bandit policies over the motivation-estimation seam (PAPERS.md: Zhang
et al. frame adaptive task assignment as exploration/exploitation).

Two bandit surfaces live here:

* **Weight policies** decide the solve-time ``(alpha, beta)`` for each
  worker from an estimator's posterior instead of committing to its mean.
  :class:`ThompsonWeightPolicy` draws alpha from the Beta posterior
  (wiring the previously unreachable
  :meth:`~repro.core.estimators.BayesianMotivationEstimator.sample_weights`
  into the serving path); :class:`UCBWeightPolicy` adds an optimism bonus
  toward the under-observed diversity side that shrinks as evidence
  accumulates.  ``None`` / "off" keeps the paper's mean behaviour
  bit-identically (the policy is simply never consulted).

* :class:`TierBandit` is a contextual UCB1 over the solver degradation
  ladder: arms are ladder tiers, contexts are load regimes, rewards fold
  observed solve CPU time against the solve budget and adjudicated
  quality.  :class:`repro.serve.resilience.DegradationController` remains
  the fixed-policy special case (and the default).

Weight policies are duck-typed like estimators: anything with
``weights_for(estimator, worker_id)`` plugs into
:class:`~repro.crowd.service.AssignmentService` and
:func:`~repro.core.adaptive.run_adaptive_loop`.  Policies that hold
state (RNG, pull counts) expose the same ``state_dict`` /
``load_state_dict`` / ``export_worker`` / ``import_worker`` contract as
estimators so snapshots and shard handoff stay bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidInstanceError
from .adaptive import MotivationEstimator
from .estimators import BayesianMotivationEstimator
from .worker import MotivationWeights

#: Valid ``--estimator`` names.
ESTIMATORS = ("plain", "bayes")
#: Valid ``--bandit`` weight-policy names.
WEIGHT_POLICIES = ("off", "thompson", "ucb")
#: Valid ``--tier-policy`` names (the controllers live in repro.serve).
TIER_POLICIES = ("streak", "bandit")

#: Mixed into the service seed so the Thompson stream is independent of the
#: service's own lease/seed stream while staying reproducible from the
#: journal header alone.
_THOMPSON_STREAM = 0x54485053  # "THPS"


def make_estimator(name: str):
    """Build a named estimator (``plain`` | ``bayes``) with defaults."""
    if name == "plain":
        return MotivationEstimator()
    if name == "bayes":
        return BayesianMotivationEstimator()
    raise InvalidInstanceError(
        f"unknown estimator {name!r}; expected one of {ESTIMATORS}"
    )


def make_weight_policy(name: str, seed: "int | None" = None):
    """Build a named weight policy; ``off`` maps to ``None`` (mean path)."""
    if name == "off":
        return None
    if name == "thompson":
        return ThompsonWeightPolicy(seed=seed)
    if name == "ucb":
        return UCBWeightPolicy()
    raise InvalidInstanceError(
        f"unknown bandit policy {name!r}; expected one of {WEIGHT_POLICIES}"
    )


def build_adaptivity(config: dict, seed: "int | None" = None):
    """Build ``(estimator, weight_policy)`` from an adaptivity config dict.

    The dict is the journal-header / ServeConfig shape:
    ``{"estimator": "plain"|"bayes", "bandit": "off"|"thompson"|"ucb"}``;
    missing keys default to the paper's behaviour.  Both the daemon and
    replay construct through here so a recorded bandit run reconstructs
    the exact same policy (including the Thompson RNG stream derived from
    ``seed``).

    Raises:
        InvalidInstanceError: unknown names, or ``thompson`` without a
            posterior-sampling estimator.
    """
    estimator_name = config.get("estimator", "plain")
    bandit_name = config.get("bandit", "off")
    estimator = make_estimator(estimator_name)
    policy = make_weight_policy(bandit_name, seed=seed)
    if policy is not None and policy.requires_sampling:
        if not hasattr(estimator, "sample_weights"):
            raise InvalidInstanceError(
                f"bandit policy {bandit_name!r} requires a posterior-sampling "
                f"estimator (use --estimator bayes), got {estimator_name!r}"
            )
    return estimator, policy


class MeanWeightPolicy:
    """The identity policy: delegate to the estimator's mean.

    Exists so callers can hold "some policy" uniformly; the serving path
    uses ``None`` instead to keep the default branch untouched.
    """

    name = "off"
    requires_sampling = False

    def weights_for(self, estimator, worker_id: str) -> MotivationWeights:
        return estimator.weights_for(worker_id)

    def state_dict(self) -> dict:
        return {"name": self.name}

    def load_state_dict(self, state: dict) -> None:
        pass

    def export_worker(self, worker_id: str) -> dict:
        return {}

    def import_worker(self, worker_id: str, state: dict) -> None:
        pass

    def describe(self) -> dict:
        return {"policy": self.name, "draws": 0}


class ThompsonWeightPolicy:
    """Thompson sampling over per-worker alpha.

    Each solve-time consultation draws alpha from the estimator's Beta
    posterior (``estimator.sample_weights``).  The policy owns its own
    deterministic RNG stream, derived from the service seed but decoupled
    from the service's lease/seed stream, so replay reconstructs the
    exact draw sequence from the journal header alone.
    """

    name = "thompson"
    requires_sampling = True

    def __init__(self, seed: "int | None" = None):
        if seed is None:
            self._rng = np.random.default_rng()
        else:
            self._rng = np.random.default_rng([int(seed), _THOMPSON_STREAM])
        self._draws = 0
        self._pulls: dict[str, int] = {}

    @property
    def draws(self) -> int:
        """Total posterior draws made (for metrics)."""
        return self._draws

    def weights_for(self, estimator, worker_id: str) -> MotivationWeights:
        self._draws += 1
        self._pulls[worker_id] = self._pulls.get(worker_id, 0) + 1
        return estimator.sample_weights(worker_id, self._rng)

    # -- snapshot / handoff ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "rng_state": self._rng.bit_generator.state,
            "draws": self._draws,
            "pulls": dict(self._pulls),
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng_state"]
        self._draws = int(state["draws"])
        self._pulls = {w: int(v) for w, v in state["pulls"].items()}

    def export_worker(self, worker_id: str) -> dict:
        pulls = self._pulls.get(worker_id)
        return {} if pulls is None else {"pulls": pulls}

    def import_worker(self, worker_id: str, state: dict) -> None:
        self._pulls.pop(worker_id, None)
        if "pulls" in state:
            pulls = int(state["pulls"])
            if pulls < 0:
                raise InvalidInstanceError(
                    f"bandit import for {worker_id!r}: negative pulls {pulls}"
                )
            self._pulls[worker_id] = pulls

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "draws": self._draws,
            "workers": len(self._pulls),
        }


class UCBWeightPolicy:
    """UCB over per-worker alpha: mean plus a shrinking optimism bonus.

    The bonus ``c * sqrt(ln(1 + t) / (1 + n_w))`` (``t`` total
    consultations, ``n_w`` the worker's raw observation count) pushes
    under-observed workers toward diversity-seeking assignments — the
    factor whose gains are only observable once a reference set exists —
    and decays to the posterior mean as evidence accumulates.  Fully
    deterministic: no RNG state to snapshot.
    """

    name = "ucb"
    requires_sampling = False

    def __init__(self, c: float = 0.35):
        if c < 0.0:
            raise InvalidInstanceError(f"exploration constant must be >= 0, got {c}")
        self._c = c
        self._draws = 0
        self._pulls: dict[str, int] = {}

    @property
    def draws(self) -> int:
        return self._draws

    def weights_for(self, estimator, worker_id: str) -> MotivationWeights:
        self._draws += 1
        self._pulls[worker_id] = self._pulls.get(worker_id, 0) + 1
        mean = estimator.weights_for(worker_id).alpha
        n = estimator.observation_count(worker_id)
        bonus = self._c * math.sqrt(math.log(1.0 + self._draws) / (1.0 + n))
        alpha = min(1.0, max(0.0, mean + bonus))
        return MotivationWeights(alpha, 1.0 - alpha)

    # -- snapshot / handoff ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "c": self._c,
            "draws": self._draws,
            "pulls": dict(self._pulls),
        }

    def load_state_dict(self, state: dict) -> None:
        self._c = float(state["c"])
        self._draws = int(state["draws"])
        self._pulls = {w: int(v) for w, v in state["pulls"].items()}

    def export_worker(self, worker_id: str) -> dict:
        pulls = self._pulls.get(worker_id)
        return {} if pulls is None else {"pulls": pulls}

    def import_worker(self, worker_id: str, state: dict) -> None:
        self._pulls.pop(worker_id, None)
        if "pulls" in state:
            pulls = int(state["pulls"])
            if pulls < 0:
                raise InvalidInstanceError(
                    f"bandit import for {worker_id!r}: negative pulls {pulls}"
                )
            self._pulls[worker_id] = pulls

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "c": self._c,
            "draws": self._draws,
            "workers": len(self._pulls),
        }


class TierBandit:
    """Contextual UCB1 over solver ladder tiers.

    Arms are ladder positions; contexts are discrete load regimes (the
    caller buckets them — e.g. "under budget" vs "pressured").  Rewards
    must land in [0, 1] (the caller folds solve CPU time and adjudicated
    quality; see :class:`repro.serve.resilience.BanditTierController`).
    Deterministic: unplayed arms are tried lowest-index first, ties break
    to the lowest index, and there is no randomization.
    """

    def __init__(self, n_arms: int, n_contexts: int = 2, c: float = 0.3):
        if n_arms < 1:
            raise InvalidInstanceError(f"need at least one arm, got {n_arms}")
        if n_contexts < 1:
            raise InvalidInstanceError(
                f"need at least one context, got {n_contexts}"
            )
        if c < 0.0:
            raise InvalidInstanceError(f"exploration constant must be >= 0, got {c}")
        self.n_arms = n_arms
        self.n_contexts = n_contexts
        self._c = c
        self._counts = [[0] * n_arms for _ in range(n_contexts)]
        self._sums = [[0.0] * n_arms for _ in range(n_contexts)]

    def select(self, context: int) -> int:
        """The arm to play next in ``context`` (pure function of state)."""
        counts = self._counts[context]
        sums = self._sums[context]
        for arm in range(self.n_arms):
            if counts[arm] == 0:
                return arm
        total = sum(counts)
        best_arm, best_score = 0, -math.inf
        for arm in range(self.n_arms):
            mean = sums[arm] / counts[arm]
            score = mean + self._c * math.sqrt(math.log(total) / counts[arm])
            if score > best_score + 1e-12:
                best_arm, best_score = arm, score
        return best_arm

    def update(self, context: int, arm: int, reward: float) -> None:
        """Fold one observed reward (clipped to [0, 1]) into ``arm``."""
        reward = min(1.0, max(0.0, float(reward)))
        self._counts[context][arm] += 1
        self._sums[context][arm] += reward

    def counts(self, context: int) -> list[int]:
        return list(self._counts[context])

    def means(self, context: int) -> list[float]:
        return [
            s / n if n else 0.0
            for s, n in zip(self._sums[context], self._counts[context])
        ]

    def state_dict(self) -> dict:
        return {
            "c": self._c,
            "counts": [list(row) for row in self._counts],
            "sums": [list(row) for row in self._sums],
        }

    def load_state_dict(self, state: dict) -> None:
        counts = state["counts"]
        sums = state["sums"]
        if len(counts) != self.n_contexts or any(
            len(row) != self.n_arms for row in counts
        ):
            raise InvalidInstanceError(
                "tier bandit state shape mismatch: expected "
                f"{self.n_contexts}x{self.n_arms}"
            )
        self._c = float(state["c"])
        self._counts = [[int(v) for v in row] for row in counts]
        self._sums = [[float(v) for v in row] for row in sums]

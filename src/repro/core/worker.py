"""Workers and their motivation weights.

A :class:`Worker` carries a boolean keyword-interest vector (Section II) and
the per-iteration motivation weights ``(alpha, beta)`` with
``alpha + beta = 1`` (Eq. 3).  :class:`MotivationWeights` is a small validated
value type so weights can never silently drift away from the simplex.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from ..errors import InvalidInstanceError
from .keywords import Vocabulary, coerce_vector

_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MotivationWeights:
    """The pair ``(alpha, beta)`` weighting diversity vs. relevance.

    Invariants: both weights in ``[0, 1]`` and ``alpha + beta == 1``.

    >>> MotivationWeights(0.25, 0.75).alpha
    0.25
    >>> MotivationWeights.diversity_only().beta
    0.0
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.alpha) and math.isfinite(self.beta)):
            raise InvalidInstanceError("motivation weights must be finite")
        if self.alpha < -_WEIGHT_TOLERANCE or self.beta < -_WEIGHT_TOLERANCE:
            raise InvalidInstanceError(
                f"motivation weights must be non-negative, got "
                f"alpha={self.alpha}, beta={self.beta}"
            )
        if abs(self.alpha + self.beta - 1.0) > 1e-6:
            raise InvalidInstanceError(
                f"alpha + beta must equal 1, got {self.alpha + self.beta}"
            )

    @classmethod
    def diversity_only(cls) -> "MotivationWeights":
        """Weights of the HTA-GRE-DIV baseline (alpha=1, beta=0)."""
        return cls(1.0, 0.0)

    @classmethod
    def relevance_only(cls) -> "MotivationWeights":
        """Weights of the HTA-GRE-REL baseline (alpha=0, beta=1)."""
        return cls(0.0, 1.0)

    @classmethod
    def balanced(cls) -> "MotivationWeights":
        """The uniform prior used before any behaviour is observed."""
        return cls(0.5, 0.5)

    @classmethod
    def from_gains(cls, diversity_gain: float, relevance_gain: float) -> "MotivationWeights":
        """Normalize two non-negative average gains onto the simplex.

        Falls back to :meth:`balanced` when both gains are (numerically) zero,
        which happens for a worker who has not completed any task yet.
        """
        if diversity_gain < 0 or relevance_gain < 0:
            raise InvalidInstanceError("gains must be non-negative")
        total = diversity_gain + relevance_gain
        if total <= _WEIGHT_TOLERANCE:
            return cls.balanced()
        return cls(diversity_gain / total, relevance_gain / total)


@dataclass(frozen=True)
class Worker:
    """A crowd worker.

    Attributes:
        worker_id: Unique identifier within a pool.
        vector: Boolean keyword-interest vector.
        weights: Current estimate of the worker's (alpha, beta).
    """

    worker_id: str
    vector: np.ndarray
    weights: MotivationWeights = field(default_factory=MotivationWeights.balanced)

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", np.asarray(self.vector, dtype=bool))

    @property
    def alpha(self) -> float:
        return self.weights.alpha

    @property
    def beta(self) -> float:
        return self.weights.beta

    def with_weights(self, weights: MotivationWeights) -> "Worker":
        """A copy of this worker carrying new motivation weights."""
        return Worker(self.worker_id, self.vector, weights)

    def keywords(self, vocabulary: Vocabulary) -> tuple[str, ...]:
        """Keyword names this worker declared interest in."""
        return vocabulary.decode(self.vector)

    def __hash__(self) -> int:
        return hash(self.worker_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Worker):
            return NotImplemented
        return self.worker_id == other.worker_id


class WorkerPool:
    """The set of available workers ``W^i`` with a stacked interest matrix."""

    def __init__(self, workers: Iterable[Worker], vocabulary: Vocabulary):
        self._workers: tuple[Worker, ...] = tuple(workers)
        self._vocabulary = vocabulary
        if not self._workers:
            raise InvalidInstanceError("a worker pool cannot be empty")
        seen: dict[str, int] = {}
        rows = []
        for position, worker in enumerate(self._workers):
            if worker.worker_id in seen:
                raise InvalidInstanceError(
                    f"duplicate worker id {worker.worker_id!r} in pool"
                )
            seen[worker.worker_id] = position
            rows.append(coerce_vector(worker.vector, len(vocabulary)))
        self._position = seen
        self._matrix = np.vstack(rows)

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __getitem__(self, position: int) -> Worker:
        return self._workers[position]

    def __contains__(self, worker: object) -> bool:
        if isinstance(worker, Worker):
            return worker.worker_id in self._position
        return worker in self._position

    def __repr__(self) -> str:
        return f"WorkerPool({len(self._workers)} workers)"

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def workers(self) -> tuple[Worker, ...]:
        return self._workers

    @property
    def matrix(self) -> np.ndarray:
        """Boolean matrix of shape ``(n_workers, n_keywords)``."""
        return self._matrix

    @property
    def alphas(self) -> np.ndarray:
        """Vector of per-worker alpha weights, in pool order."""
        return np.array([w.alpha for w in self._workers])

    @property
    def betas(self) -> np.ndarray:
        """Vector of per-worker beta weights, in pool order."""
        return np.array([w.beta for w in self._workers])

    def position(self, worker_id: str) -> int:
        try:
            return self._position[worker_id]
        except KeyError:
            raise KeyError(f"worker {worker_id!r} is not in this pool") from None

    def by_id(self, worker_id: str) -> Worker:
        return self._workers[self.position(worker_id)]

    def with_updated(self, updated: Iterable[Worker]) -> "WorkerPool":
        """A new pool replacing workers by id with updated copies."""
        replacements = {w.worker_id: w for w in updated}
        unknown = set(replacements) - set(self._position)
        if unknown:
            raise InvalidInstanceError(f"unknown worker ids: {sorted(unknown)}")
        return WorkerPool(
            (replacements.get(w.worker_id, w) for w in self._workers),
            self._vocabulary,
        )

"""Streaming task assignment (an extension from the paper's future work).

The conclusion notes that extending HTA to richer settings "makes task
assignment challenging as it needs to be streamed and will depend on the
availability of workers".  :class:`StreamingAssigner` is that streaming
shell around the batch solvers: tasks and workers arrive over continuous
time, tasks are buffered, and a batch HTA solve fires when

* the buffer reaches ``batch_size`` tasks, or
* the oldest buffered task has waited ``max_wait`` seconds

and at least one worker is available.  Buffered tasks older than ``ttl``
are expired (dropped with a counter) so latency to requesters is bounded.

The assigner is deliberately *not* a simulator — it is the production-style
component a platform would run; the discrete-event simulator in
:mod:`repro.crowd.platform` plays the surrounding world.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidInstanceError, SimulationError
from ..rng import ensure_rng
from .assignment import Assignment
from .instance import HTAInstance
from .keywords import Vocabulary
from .task import Task, TaskPool
from .worker import Worker, WorkerPool


@dataclass(frozen=True)
class StreamingConfig:
    """Trigger and retention policy of the streaming assigner.

    Attributes:
        x_max: Per-worker capacity of each batch solve.
        batch_size: Buffered-task count that triggers a solve.
        max_wait: Seconds the oldest buffered task may wait before a solve
            is forced (even with a part-filled buffer).
        ttl: Seconds after which an unassigned buffered task expires
            (``inf`` disables expiry).
    """

    x_max: int = 5
    batch_size: int = 50
    max_wait: float = 60.0
    ttl: float = math.inf

    def __post_init__(self) -> None:
        if self.x_max < 1:
            raise InvalidInstanceError(f"x_max must be >= 1, got {self.x_max}")
        if self.batch_size < 1:
            raise InvalidInstanceError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_wait < 0:
            raise InvalidInstanceError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.ttl <= 0:
            raise InvalidInstanceError(f"ttl must be positive, got {self.ttl}")


@dataclass
class StreamingStats:
    """Counters accumulated over the assigner's lifetime."""

    tasks_received: int = 0
    tasks_assigned: int = 0
    tasks_expired: int = 0
    solves: int = 0
    total_wait: float = 0.0  # summed assignment latency of assigned tasks

    @property
    def mean_wait(self) -> float:
        if self.tasks_assigned == 0:
            return 0.0
        return self.total_wait / self.tasks_assigned


class StreamingAssigner:
    """Buffered, trigger-driven wrapper around a batch HTA solver."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        solver: "object | None" = None,
        config: StreamingConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
    ):
        if solver is None:
            from .solvers import HTAGreSolver

            solver = HTAGreSolver()
        self._vocabulary = vocabulary
        self._solver = solver
        self._config = config or StreamingConfig()
        self._rng = ensure_rng(rng)
        self._buffer: dict[str, Task] = {}
        self._arrival_time: dict[str, float] = {}
        self._workers: dict[str, Worker] = {}
        self._clock = 0.0
        self.stats = StreamingStats()

    # -- state ---------------------------------------------------------------

    @property
    def config(self) -> StreamingConfig:
        return self._config

    @property
    def now(self) -> float:
        return self._clock

    def buffered_tasks(self) -> int:
        return len(self._buffer)

    def available_workers(self) -> int:
        return len(self._workers)

    def oldest_wait(self, now: float | None = None) -> float:
        """Seconds the oldest buffered task has been waiting."""
        if not self._arrival_time:
            return 0.0
        reference = self._advance(now)
        return reference - min(self._arrival_time.values())

    # -- streams --------------------------------------------------------------

    def add_task(self, task: Task, now: float | None = None) -> None:
        """A new task arrives on the stream."""
        timestamp = self._advance(now)
        if task.task_id in self._buffer:
            raise SimulationError(f"task {task.task_id!r} is already buffered")
        self._buffer[task.task_id] = task
        self._arrival_time[task.task_id] = timestamp
        self.stats.tasks_received += 1

    def add_tasks(self, tasks: Iterable[Task], now: float | None = None) -> None:
        timestamp = self._advance(now)
        for task in tasks:
            self.add_task(task, timestamp)

    def worker_arrived(self, worker: Worker, now: float | None = None) -> None:
        """A worker becomes available for assignment."""
        self._advance(now)
        if worker.worker_id in self._workers:
            raise SimulationError(f"worker {worker.worker_id!r} is already available")
        self._workers[worker.worker_id] = worker

    def worker_departed(self, worker_id: str, now: float | None = None) -> None:
        """A worker leaves (or is busy with a previous batch)."""
        self._advance(now)
        if self._workers.pop(worker_id, None) is None:
            raise SimulationError(f"worker {worker_id!r} is not available")

    def update_worker(self, worker: Worker) -> None:
        """Refresh an available worker's weights (adaptive re-estimation)."""
        if worker.worker_id not in self._workers:
            raise SimulationError(f"worker {worker.worker_id!r} is not available")
        self._workers[worker.worker_id] = worker

    # -- triggering -------------------------------------------------------------

    def due(self, now: float | None = None) -> bool:
        """True when a batch solve should fire."""
        reference = self._advance(now)
        self._expire(reference)
        if not self._buffer or not self._workers:
            return False
        if len(self._buffer) >= self._config.batch_size:
            return True
        return self.oldest_wait(reference) >= self._config.max_wait

    def poll(self, now: float | None = None) -> Assignment | None:
        """Fire a solve if one is due; returns its assignment."""
        reference = self._advance(now)
        if not self.due(reference):
            return None
        return self.assign(reference)

    def assign(self, now: float | None = None) -> Assignment:
        """Force a batch solve over the current buffer and workers.

        Assigned tasks leave the buffer; workers stay available (the caller
        decides when a worker is busy via :meth:`worker_departed`).
        """
        reference = self._advance(now)
        self._expire(reference)
        if not self._buffer:
            raise SimulationError("nothing to assign: the task buffer is empty")
        if not self._workers:
            raise SimulationError("nothing to assign to: no workers available")
        tasks = TaskPool(self._buffer.values(), self._vocabulary)
        workers = WorkerPool(self._workers.values(), self._vocabulary)
        instance = HTAInstance(tasks, workers, self._config.x_max)
        result = self._solver.solve(instance, self._rng)
        assignment = result.assignment
        for task_id in assignment.assigned_task_ids():
            del self._buffer[task_id]
            self.stats.total_wait += reference - self._arrival_time.pop(task_id)
            self.stats.tasks_assigned += 1
        self.stats.solves += 1
        return assignment

    # -- internals -------------------------------------------------------------

    def _advance(self, now: float | None) -> float:
        if now is None:
            return self._clock
        if now < self._clock:
            raise SimulationError(
                f"time went backwards: {now} < {self._clock}"
            )
        self._clock = now
        return now

    def _expire(self, now: float) -> None:
        if math.isinf(self._config.ttl):
            return
        dead = [
            task_id
            for task_id, arrived in self._arrival_time.items()
            if now - arrived > self._config.ttl
        ]
        for task_id in dead:
            del self._buffer[task_id]
            del self._arrival_time[task_id]
            self.stats.tasks_expired += 1

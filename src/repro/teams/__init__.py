"""Team formation for collaborative tasks — the paper's future-work plan."""

from .algorithms import exact_teams, greedy_teams, random_teams
from .model import (
    CollaborativeTask,
    TeamAssignment,
    TeamInstance,
    TeamWeights,
    collaborative_tasks_from_pool,
)

__all__ = [
    "CollaborativeTask",
    "TeamAssignment",
    "TeamInstance",
    "TeamWeights",
    "collaborative_tasks_from_pool",
    "exact_teams",
    "greedy_teams",
    "random_teams",
]

"""Collaborative tasks and team motivation (the paper's future work).

The paper closes with: *"Our immediate plan is to extend this work to
collaborative tasks where motivation factors such as social signaling
matter.  Task assignment would have to account for the presence of other
workers in forming the most motivated team to complete a task ... [which]
will depend on the availability of workers with complementary skills."*

This extension package realizes that plan as a concrete optimization
problem.  A :class:`CollaborativeTask` needs a team of exactly ``team_size``
workers; a team's motivation for a task combines three ingredients:

* **relevance** — the mean individual relevance of members to the task
  (the paper's beta factor, lifted to teams);
* **coverage** — the fraction of the task's required keywords covered by
  the *union* of member skills (complementary skills);
* **affinity** — mean pairwise similarity between members (the social-
  signaling proxy: teams that share vocabulary coordinate better).

The weights of the three ingredients are a :class:`TeamWeights` simplex.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..core.distance import pairwise_jaccard
from ..core.keywords import Vocabulary
from ..core.task import Task
from ..core.worker import WorkerPool
from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class CollaborativeTask:
    """A task requiring a team of ``team_size`` workers."""

    task: Task
    team_size: int

    def __post_init__(self) -> None:
        if self.team_size < 1:
            raise InvalidInstanceError(
                f"team_size must be >= 1, got {self.team_size} "
                f"for task {self.task.task_id!r}"
            )

    @property
    def task_id(self) -> str:
        return self.task.task_id


@dataclass(frozen=True)
class TeamWeights:
    """Simplex weights over (relevance, coverage, affinity)."""

    relevance: float = 0.4
    coverage: float = 0.4
    affinity: float = 0.2

    def __post_init__(self) -> None:
        values = (self.relevance, self.coverage, self.affinity)
        if any(not math.isfinite(v) or v < 0 for v in values):
            raise InvalidInstanceError("team weights must be non-negative finite")
        if abs(sum(values) - 1.0) > 1e-6:
            raise InvalidInstanceError(
                f"team weights must sum to 1, got {sum(values)}"
            )


@dataclass(frozen=True)
class TeamInstance:
    """A team-formation problem: collaborative tasks + a worker pool."""

    tasks: tuple[CollaborativeTask, ...]
    workers: WorkerPool
    weights: TeamWeights = field(default_factory=TeamWeights)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise InvalidInstanceError("need at least one collaborative task")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise InvalidInstanceError("duplicate collaborative task ids")
        demand = sum(t.team_size for t in self.tasks)
        if demand > len(self.workers):
            raise InvalidInstanceError(
                f"tasks demand {demand} workers but only "
                f"{len(self.workers)} are available"
            )

    @property
    def vocabulary(self) -> Vocabulary:
        return self.workers.vocabulary

    @cached_property
    def relevance(self) -> np.ndarray:
        """Worker-task relevance, shape ``(n_workers, n_tasks)``."""
        task_matrix = np.vstack([t.task.vector for t in self.tasks])
        return 1.0 - pairwise_jaccard(self.workers.matrix, task_matrix)

    @cached_property
    def worker_similarity(self) -> np.ndarray:
        """Pairwise worker similarity (1 - Jaccard distance)."""
        return 1.0 - pairwise_jaccard(self.workers.matrix)

    def coverage(self, task_index: int, member_indices: Sequence[int]) -> float:
        """Fraction of the task's keywords covered by the member union."""
        required = np.asarray(self.tasks[task_index].task.vector, dtype=bool)
        n_required = int(required.sum())
        if n_required == 0:
            return 1.0
        if not len(member_indices):
            return 0.0
        union = self.workers.matrix[np.asarray(member_indices, dtype=np.intp)].any(
            axis=0
        )
        return float((union & required).sum() / n_required)

    def team_motivation(self, task_index: int, member_indices: Sequence[int]) -> float:
        """The team's expected motivation for the task (in [0, 1])."""
        members = np.asarray(member_indices, dtype=np.intp)
        if members.size == 0:
            return 0.0
        mean_relevance = float(self.relevance[members, task_index].mean())
        coverage = self.coverage(task_index, members)
        if members.size > 1:
            sub = self.worker_similarity[np.ix_(members, members)]
            affinity = float(sub[np.triu_indices(members.size, 1)].mean())
        else:
            affinity = 1.0  # a lone worker trivially coordinates with itself
        w = self.weights
        return (
            w.relevance * mean_relevance
            + w.coverage * coverage
            + w.affinity * affinity
        )


@dataclass(frozen=True)
class TeamAssignment:
    """Teams per collaborative task (worker ids)."""

    by_task: dict[str, tuple[str, ...]]

    def validate(self, instance: TeamInstance) -> None:
        """Check team sizes and worker disjointness."""
        sizes = {t.task_id: t.team_size for t in instance.tasks}
        unknown = set(self.by_task) - set(sizes)
        if unknown:
            raise InvalidInstanceError(f"unknown task ids: {sorted(unknown)}")
        seen: dict[str, str] = {}
        for task_id, members in self.by_task.items():
            if len(members) != sizes[task_id]:
                raise InvalidInstanceError(
                    f"task {task_id!r} needs {sizes[task_id]} members, "
                    f"got {len(members)}"
                )
            for worker_id in members:
                if worker_id not in instance.workers:
                    raise InvalidInstanceError(f"unknown worker {worker_id!r}")
                if worker_id in seen:
                    raise InvalidInstanceError(
                        f"worker {worker_id!r} is on two teams "
                        f"({seen[worker_id]!r} and {task_id!r})"
                    )
                seen[worker_id] = task_id

    def objective(self, instance: TeamInstance) -> float:
        """Total team motivation across tasks."""
        total = 0.0
        index_of = {t.task_id: i for i, t in enumerate(instance.tasks)}
        for task_id, members in self.by_task.items():
            member_idx = [instance.workers.position(w) for w in members]
            total += instance.team_motivation(index_of[task_id], member_idx)
        return total


def collaborative_tasks_from_pool(
    tasks: Iterable[Task],
    team_size: int,
) -> tuple[CollaborativeTask, ...]:
    """Wrap plain tasks into uniform-size collaborative tasks."""
    return tuple(CollaborativeTask(task, team_size) for task in tasks)

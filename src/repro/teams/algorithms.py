"""Team-formation algorithms.

Three solvers over :class:`~repro.teams.model.TeamInstance`:

* :func:`greedy_teams` — seed each task with its best available worker,
  then grow teams by best marginal motivation gain, processing (task,
  worker) candidates globally by gain.  ``O(|tasks| * |workers|^2)``.
* :func:`random_teams` — deal workers randomly (the sanity floor).
* :func:`exact_teams` — exhaustive optimum for tiny instances (oracle).

Team formation generalizes HTA's structure (disjoint groups, a set
function per group) and inherits its hardness; no approximation factor is
claimed for the greedy — the benchmark measures its gap against the oracle
empirically.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..errors import InvalidInstanceError
from ..rng import ensure_rng
from .model import TeamAssignment, TeamInstance

MAX_EXACT_WORKERS = 10
MAX_EXACT_TASKS = 4


def greedy_teams(
    instance: TeamInstance,
    rng: "int | np.random.Generator | None" = None,
) -> TeamAssignment:
    """Greedy marginal-gain team formation.

    Repeatedly picks the (task, worker) pair with the highest marginal team-
    motivation gain among tasks that still have open slots, breaking ties by
    task order.  Deterministic given the instance (``rng`` accepted for
    interface symmetry; unused).
    """
    n_tasks = len(instance.tasks)
    open_slots = [t.team_size for t in instance.tasks]
    teams: list[list[int]] = [[] for _ in range(n_tasks)]
    available = set(range(len(instance.workers)))
    current_value = [0.0] * n_tasks

    total_slots = sum(open_slots)
    for _ in range(total_slots):
        best_gain = -np.inf
        best_pair: tuple[int, int] | None = None
        for task_index in range(n_tasks):
            if open_slots[task_index] == 0:
                continue
            for worker_index in available:
                candidate = teams[task_index] + [worker_index]
                gain = (
                    instance.team_motivation(task_index, candidate)
                    - current_value[task_index]
                )
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (task_index, worker_index)
        assert best_pair is not None  # demand <= supply is validated upstream
        task_index, worker_index = best_pair
        teams[task_index].append(worker_index)
        current_value[task_index] = instance.team_motivation(
            task_index, teams[task_index]
        )
        open_slots[task_index] -= 1
        available.remove(worker_index)

    return _to_assignment(instance, teams)


def random_teams(
    instance: TeamInstance,
    rng: "int | np.random.Generator | None" = None,
) -> TeamAssignment:
    """Deal workers to teams uniformly at random."""
    generator = ensure_rng(rng)
    order = list(generator.permutation(len(instance.workers)))
    teams: list[list[int]] = []
    cursor = 0
    for task in instance.tasks:
        teams.append([int(i) for i in order[cursor : cursor + task.team_size]])
        cursor += task.team_size
    return _to_assignment(instance, teams)


def exact_teams(instance: TeamInstance) -> TeamAssignment:
    """Exhaustive optimal team formation for tiny instances."""
    if len(instance.workers) > MAX_EXACT_WORKERS:
        raise InvalidInstanceError(
            f"exact team formation supports at most {MAX_EXACT_WORKERS} "
            f"workers, got {len(instance.workers)}"
        )
    if len(instance.tasks) > MAX_EXACT_TASKS:
        raise InvalidInstanceError(
            f"exact team formation supports at most {MAX_EXACT_TASKS} "
            f"tasks, got {len(instance.tasks)}"
        )

    best_value = -np.inf
    best_teams: list[list[int]] | None = None

    def recurse(task_index: int, available: tuple[int, ...], teams, value):
        nonlocal best_value, best_teams
        if task_index == len(instance.tasks):
            if value > best_value:
                best_value = value
                best_teams = [list(t) for t in teams]
            return
        size = instance.tasks[task_index].team_size
        for members in combinations(available, size):
            taken = set(members)
            rest = tuple(w for w in available if w not in taken)
            teams.append(list(members))
            recurse(
                task_index + 1,
                rest,
                teams,
                value + instance.team_motivation(task_index, list(members)),
            )
            teams.pop()

    recurse(0, tuple(range(len(instance.workers))), [], 0.0)
    assert best_teams is not None
    return _to_assignment(instance, best_teams)


def _to_assignment(instance: TeamInstance, teams: list[list[int]]) -> TeamAssignment:
    assignment = TeamAssignment(
        {
            task.task_id: tuple(
                instance.workers[i].worker_id for i in members
            )
            for task, members in zip(instance.tasks, teams)
        }
    )
    assignment.validate(instance)
    return assignment

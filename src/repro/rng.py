"""Deterministic random-number handling.

Every stochastic component of the library takes an explicit ``rng`` argument.
This module provides one normalization helper so callers may pass a seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy) interchangeably.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.

    >>> gen = ensure_rng(42)
    >>> ensure_rng(gen) is gen
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by the simulator to give each worker/session its own stream so that
    adding a worker does not perturb the randomness of the others.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]

"""Instance diagnostics — lint HTA instances before solving.

Solvers accept any well-formed instance, but several silent degeneracies
produce confusing results (near-zero objectives, all-tied profits,
meaningless relevance).  :func:`diagnose` inspects an instance and returns
structured findings a platform can log or a notebook user can read, each
tagged with a severity:

* ``error`` — the instance is solvable but the result will be degenerate;
* ``warning`` — a likely modelling mistake;
* ``info`` — characteristics that change algorithm behaviour (e.g. the
  clustered-pool regime where greedy-marginal beats the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.instance import HTAInstance

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic finding."""

    severity: str
    code: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


def diagnose(instance: HTAInstance) -> list[Finding]:
    """Inspect ``instance`` and return findings, most severe first."""
    findings: list[Finding] = []
    findings.extend(_check_capacity(instance))
    findings.extend(_check_task_vectors(instance))
    findings.extend(_check_worker_vectors(instance))
    findings.extend(_check_weights(instance))
    findings.extend(_check_distance_structure(instance))
    order = {severity: i for i, severity in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: order[f.severity])
    return findings


def has_blockers(findings: list[Finding]) -> bool:
    """True if any finding is an error."""
    return any(f.severity == "error" for f in findings)


def _check_capacity(instance: HTAInstance) -> list[Finding]:
    findings = []
    if instance.x_max == 1:
        findings.append(
            Finding(
                "error",
                "xmax-one",
                "x_max = 1 makes every motivation zero under Eq. 3 "
                "(no pairs, and the relevance multiplier |T'|-1 vanishes); "
                "use x_max >= 2",
            )
        )
    if instance.capacity > 2 * instance.n_tasks:
        findings.append(
            Finding(
                "warning",
                "overcapacity",
                f"capacity {instance.capacity} is more than twice the task "
                f"count {instance.n_tasks}; most slots will stay empty",
            )
        )
    return findings


def _check_task_vectors(instance: HTAInstance) -> list[Finding]:
    findings = []
    counts = instance.tasks.matrix.sum(axis=1)
    n_empty = int((counts == 0).sum())
    if n_empty:
        findings.append(
            Finding(
                "warning",
                "empty-tasks",
                f"{n_empty} task(s) have no keywords: they are maximally "
                "distant from everything and irrelevant to every worker",
            )
        )
    _, unique_counts = np.unique(
        instance.tasks.matrix, axis=0, return_counts=True
    )
    duplicate_share = 1.0 - len(unique_counts) / instance.n_tasks
    if duplicate_share > 0.5:
        findings.append(
            Finding(
                "info",
                "clustered-pool",
                f"{duplicate_share:.0%} of task vectors are duplicates "
                "(clustered pool): the HTA-APP/HTA-GRE pipeline is weak in "
                "this regime; consider the greedy-marginal or hta-local "
                "solver (see EXPERIMENTS.md)",
            )
        )
    return findings


def _check_worker_vectors(instance: HTAInstance) -> list[Finding]:
    findings = []
    counts = instance.workers.matrix.sum(axis=1)
    n_empty = int((counts == 0).sum())
    if n_empty:
        findings.append(
            Finding(
                "warning",
                "empty-workers",
                f"{n_empty} worker(s) declared no keywords: every task has "
                "zero relevance to them",
            )
        )
    max_relevance = instance.relevance.max(axis=1)
    flat = int((max_relevance < 0.05).sum())
    if flat:
        findings.append(
            Finding(
                "warning",
                "irrelevant-workers",
                f"{flat} worker(s) have no task with relevance above 0.05; "
                "their beta weight cannot influence the assignment",
            )
        )
    return findings


def _check_weights(instance: HTAInstance) -> list[Finding]:
    findings = []
    alphas = instance.alphas()
    if np.allclose(alphas, 1.0):
        findings.append(
            Finding(
                "info",
                "diversity-only",
                "every worker has alpha = 1: this is the HTA-GRE-DIV "
                "special case (relevance is ignored entirely)",
            )
        )
    elif np.allclose(alphas, 0.0):
        findings.append(
            Finding(
                "info",
                "relevance-only",
                "every worker has alpha = 0: this is the HTA-GRE-REL "
                "special case (an LSAP; the Hungarian solver is exact here)",
            )
        )
    return findings


def _check_distance_structure(instance: HTAInstance) -> list[Finding]:
    findings = []
    diversity = instance.diversity
    off_diagonal = diversity[np.triu_indices(instance.n_tasks, k=1)]
    if off_diagonal.size == 0:
        return findings
    mean_distance = float(off_diagonal.mean())
    if mean_distance > 0.85:
        findings.append(
            Finding(
                "info",
                "high-average-diversity",
                f"mean pairwise diversity is {mean_distance:.2f}: random "
                "assignment is already near-maximal on the diversity term, "
                "so optimization gains come mostly from relevance",
            )
        )
    if mean_distance < 0.05:
        findings.append(
            Finding(
                "warning",
                "near-identical-pool",
                f"mean pairwise diversity is {mean_distance:.2f}: the "
                "diversity term is vacuous on this pool",
            )
        )
    return findings
